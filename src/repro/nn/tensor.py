"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied
to it; calling :meth:`Tensor.backward` on a scalar result propagates
gradients to every tensor created with ``requires_grad=True``.  The op
set is exactly what PMM's architecture needs: broadcasting arithmetic,
matmul (batched), activations, softmax, log-sum-style reductions, row
gather/scatter (embeddings and GNN message passing), concatenation, and
a numerically stable binary cross-entropy with logits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

__all__ = ["Tensor", "concat", "stack", "scatter_add", "no_grad"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An autodiff tensor."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ----- construction helpers -----

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @classmethod
    def _make(cls, data, parents, backward) -> "Tensor":
        out = cls(data)
        if _GRAD_ENABLED and any(parent.requires_grad for parent in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # ----- arithmetic -----

    def __add__(self, other):
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-self._wrap(other))

    def __rsub__(self, other):
        return self._wrap(other) + (-self)

    def __mul__(self, other):
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __pow__(self, exponent: float):
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._wrap(other)
        out_data = np.matmul(self.data, other.data)

        def backward(grad):
            if self.requires_grad:
                grad_self = np.matmul(grad, np.swapaxes(other.data, -1, -2))
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.matmul(np.swapaxes(self.data, -1, -2), grad)
                other._accumulate(_unbroadcast(grad_other, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # ----- activations & elementwise -----

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60, 60))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(np.maximum(self.data, 1e-12))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / np.maximum(self.data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ----- reductions & shape -----

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            scale = self.data.size
        elif isinstance(axis, tuple):
            scale = int(np.prod([self.shape[a] for a in axis]))
        else:
            scale = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / scale)

    def reshape(self, *shape) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        axes = axes or tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out_data = np.swapaxes(self.data, a, b)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, a, b))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ----- gather / scatter -----

    def index_select(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (embedding lookup); backward scatter-adds."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ----- softmax & losses -----

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad):
            if self.requires_grad:
                dot = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward)

    def bce_with_logits(
        self, targets: np.ndarray, weights: np.ndarray | None = None
    ) -> "Tensor":
        """Mean binary cross-entropy between logits and 0/1 targets.

        Numerically stable: loss = max(x,0) - x*t + log(1+exp(-|x|)).
        ``weights`` rescales per-element losses (e.g. to up-weight the
        rare MUTATE class).
        """
        x = self.data
        t = np.asarray(targets, dtype=np.float64)
        if t.shape != x.shape:
            raise ModelError(
                f"targets shape {t.shape} != logits shape {x.shape}"
            )
        w = np.ones_like(x) if weights is None else np.asarray(weights)
        per_elem = np.maximum(x, 0) - x * t + np.log1p(np.exp(-np.abs(x)))
        denom = max(w.sum(), 1e-12)
        out_data = (per_elem * w).sum() / denom

        def backward(grad):
            if self.requires_grad:
                sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
                self._accumulate(grad * w * (sig - t) / denom)

        return Tensor._make(out_data, (self,), backward)

    # ----- backward -----

    def backward(self) -> None:
        """Backpropagate from a scalar tensor."""
        if self.data.size != 1:
            raise ModelError("backward() requires a scalar tensor")
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack_: list[tuple[Tensor, bool]] = [(self, False)]
        while stack_:
            node, processed = stack_.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack_.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack_.append((parent, False))
        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def __repr__(self) -> str:
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"


# ----- free functions -----


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an axis."""
    out_data = np.concatenate([tensor.data for tensor in tensors], axis=axis)
    sizes = [tensor.shape[axis] for tensor in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    out_data = np.stack([tensor.data for tensor in tensors], axis=axis)

    def backward(grad):
        parts = np.split(grad, len(tensors), axis=axis)
        for tensor, part in zip(tensors, parts):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(part, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def scatter_add(values: Tensor, indices: np.ndarray, num_rows: int) -> Tensor:
    """out[indices[i]] += values[i] — the GNN message aggregation."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = np.zeros((num_rows,) + values.shape[1:], dtype=np.float64)
    np.add.at(out_data, indices, values.data)

    def backward(grad):
        if values.requires_grad:
            values._accumulate(grad[indices])

    return Tensor._make(out_data, (values,), backward)
