"""Optimizers."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Tensor], lr: float = 0.01,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = parameters
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        """Apply one (momentum) SGD update from stored gradients."""
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += parameter.grad
                parameter.data -= self.lr * velocity
            else:
                parameter.data -= self.lr * parameter.grad

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()


class Adam:
    """Adam with bias correction and optional gradient clipping."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        clip_norm: float | None = 5.0,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = parameters
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip_norm = clip_norm
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        """Apply one Adam update (with optional global-norm clipping)."""
        self._step += 1
        if self.clip_norm is not None:
            self._clip_gradients()
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _clip_gradients(self) -> None:
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float((parameter.grad**2).sum())
        norm = np.sqrt(total)
        if norm > self.clip_norm:
            scale = self.clip_norm / (norm + 1e-12)
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()
