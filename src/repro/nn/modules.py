"""Neural-network layers over :class:`~repro.nn.tensor.Tensor`."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.init import normal_init, xavier_uniform
from repro.nn.tensor import Tensor, concat

__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "Sequential",
]


class Module:
    """Base class with recursive parameter collection."""

    def parameters(self) -> list[Tensor]:
        found: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            for parameter in _parameters_of(value):
                if id(parameter) not in seen:
                    seen.add(id(parameter))
                    found.append(parameter)
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        return sum(parameter.data.size for parameter in self.parameters())

    # State (de)serialisation for checkpointing.

    def state_arrays(self) -> list[np.ndarray]:
        return [parameter.data for parameter in self.parameters()]

    def load_state_arrays(self, arrays: list[np.ndarray]) -> None:
        parameters = self.parameters()
        if len(arrays) != len(parameters):
            raise ModelError(
                f"checkpoint has {len(arrays)} arrays, model has "
                f"{len(parameters)} parameters"
            )
        for parameter, array in zip(parameters, arrays):
            if parameter.data.shape != array.shape:
                raise ModelError(
                    f"shape mismatch: {parameter.data.shape} vs {array.shape}"
                )
            parameter.data = np.asarray(array, dtype=np.float64).copy()


def _parameters_of(value) -> list[Tensor]:
    if isinstance(value, Tensor):
        return [value] if value.requires_grad else []
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: list[Tensor] = []
        for item in value:
            out.extend(_parameters_of(item))
        return out
    if isinstance(value, dict):
        out = []
        for item in value.values():
            out.extend(_parameters_of(item))
        return out
    return []


class Linear(Module):
    """Affine map y = xW + b."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 bias: bool = True):
        self.weight = Tensor(
            xavier_uniform(rng, in_dim, out_dim), requires_grad=True
        )
        self.bias = (
            Tensor(np.zeros(out_dim), requires_grad=True) if bias else None
        )

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table; row 0 is conventionally the padding/none row."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator):
        self.table = Tensor(
            normal_init(rng, (num_embeddings, dim)), requires_grad=True
        )

    def __call__(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.table.shape[0]
        ):
            raise ModelError(
                f"embedding index out of range [0, {self.table.shape[0]})"
            )
        flat = self.table.index_select(indices.reshape(-1))
        return flat.reshape(*indices.shape, self.table.shape[1])


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * ((variance + self.eps) ** -0.5)
        return normed * self.gamma + self.beta


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention with optional padding mask."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator):
        if dim % heads != 0:
            raise ModelError(f"dim {dim} not divisible by {heads} heads")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    def __call__(self, x: Tensor, pad_mask: np.ndarray | None = None) -> Tensor:
        """``x`` is [B, L, D]; ``pad_mask`` is [B, L] with 1 = real token."""
        batch, length, _ = x.shape
        q = self._split(self.q_proj(x), batch, length)
        k = self._split(self.k_proj(x), batch, length)
        v = self._split(self.v_proj(x), batch, length)
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if pad_mask is not None:
            bias = np.where(pad_mask[:, None, None, :] > 0, 0.0, -1e9)
            scores = scores + Tensor(bias)
        attn = scores.softmax(axis=-1)
        mixed = attn @ v  # [B, H, L, hd]
        merged = mixed.swapaxes(1, 2).reshape(batch, length, self.dim)
        return self.out_proj(merged)

    def _split(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.heads, self.head_dim).swapaxes(1, 2)


class TransformerEncoderLayer(Module):
    """Pre-norm Transformer encoder block."""

    def __init__(self, dim: int, heads: int, ffn_dim: int,
                 rng: np.random.Generator):
        self.attention = MultiHeadSelfAttention(dim, heads, rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng)
        self.ffn_out = Linear(ffn_dim, dim, rng)

    def __call__(self, x: Tensor, pad_mask: np.ndarray | None = None) -> Tensor:
        x = x + self.attention(self.norm1(x), pad_mask)
        x = x + self.ffn_out(self.ffn_in(self.norm2(x)).relu())
        return x


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def __call__(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
