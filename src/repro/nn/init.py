"""Weight initialisers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "normal_init"]


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int,
    shape: tuple[int, ...] | None = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    shape = shape or (fan_in, fan_out)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(
    rng: np.random.Generator, fan_in: int, shape: tuple[int, ...]
) -> np.ndarray:
    """He/Kaiming uniform initialisation (ReLU gain)."""
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal_init(
    rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02
) -> np.ndarray:
    """Small-variance normal initialisation (embedding tables)."""
    return rng.normal(0.0, std, size=shape)
