"""Deterministic random-number utilities.

Every stochastic component in the library draws from an explicit
:class:`numpy.random.Generator` so experiments are reproducible from a
single integer seed.  ``split`` derives independent child streams from a
parent stream, which lets a campaign hand each fuzzer instance, kernel
builder, and model trainer its own generator without shared state.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "split", "derive_seed", "choice_weighted"]

_SEED_BYTES = 8
_SEED_MOD = 2**63


def make_rng(seed: int) -> np.random.Generator:
    """Return a PCG64 generator seeded with ``seed``."""
    return np.random.Generator(np.random.PCG64(seed))


def derive_seed(seed: int, *labels: str | int) -> int:
    """Derive a child seed from ``seed`` and a label path.

    The derivation is a hash, so children with different labels are
    statistically independent and the mapping is stable across runs and
    platforms.
    """
    hasher = hashlib.blake2b(digest_size=_SEED_BYTES)
    hasher.update(str(seed).encode())
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode())
    return int.from_bytes(hasher.digest(), "little") % _SEED_MOD


def split(seed: int, *labels: str | int) -> np.random.Generator:
    """Return a generator for the child stream named by ``labels``."""
    return make_rng(derive_seed(seed, *labels))


def choice_weighted(rng: np.random.Generator, items: list, weights: list[float]):
    """Pick one of ``items`` with the given (unnormalised) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty list")
    total = float(sum(weights))
    if total <= 0:
        index = int(rng.integers(len(items)))
        return items[index]
    probabilities = np.asarray(weights, dtype=float) / total
    index = int(rng.choice(len(items), p=probabilities))
    return items[index]
