"""Command-line interface.

Subcommands mirror the Snowplow workflow::

    python -m repro.cli build-kernel --version 6.8 --seed 1
    python -m repro.cli train --kernel 6.8 --out pmm.npz
    python -m repro.cli fuzz --kernel 6.8 --model pmm.npz --hours 2
    python -m repro.cli fuzz --kernel 6.9 --baseline --hours 2
    python -m repro.cli fuzz --kernel 6.8 --model pmm.npz --workers 4
    python -m repro.cli cluster --kernel 6.8 --oracle --worker-counts 1,2,4
    python -m repro.cli triage --kernel 6.8 --prog crash.syz
    python -m repro.cli exec --kernel 6.8 --prog test.syz
    python -m repro.cli fuzz --kernel 6.8 --oracle --observe-dir out/
    python -m repro.cli observe render out/spans.jsonl --chrome trace.json
    python -m repro.cli observe render out/spans.jsonl --lineage
    python -m repro.cli observe explain bugs --dir out/
    python -m repro.cli observe explain edge:12-83 --dir out/
    python -m repro.cli observe diff old/metrics.json new/metrics.json
    python -m repro.cli observe check out/metrics.json --require fuzz.executions
    python -m repro.cli observe check out/metrics.json --slo default
    python -m repro.cli observe report out/ --slo default
    python -m repro.cli analyze kernel --releases 6.8,6.9,6.10 --strict
    python -m repro.cli analyze corpus --kernel 6.8 --seed-corpus 100
    python -m repro.cli analyze oracle --kernel 6.8 --compare-pmm
    python -m repro.cli analyze impact 6.8 6.9 --strict --manifest targets.json
    python -m repro.cli fuzz --directed patch:6.8..6.9 --oracle --hours 2

Analyze subcommands share one exit-code contract: 0 clean, 1 when
``--strict`` trips on findings (or a gate fails), 2 on internal errors
(bad inputs, crashes) — so CI can tell "the lint found something" from
"the lint itself broke".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.kernel import KNOWN_SIZES, Executor, build_kernel
from repro.observe import (
    Observer,
    SLOEngine,
    alerts_json,
    attribution_table,
    campaign_report,
    chrome_trace,
    coverage_waterfall,
    diff_snapshots,
    flag_regressions,
    flame_summary,
    format_attribution,
    format_chain,
    format_diff,
    format_waterfall,
    lineage_dot,
    load_lineage,
    load_spans_jsonl,
    load_timeseries,
    model_quality_summary,
    resolve_target,
)
from repro.observe.slo import DEFAULT_PACKS
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.pmm.checkpoint import load_pmm, save_pmm
from repro.rng import derive_seed, split
from repro.cluster import ClusterConfig
from repro.snowplow import (
    CampaignConfig,
    SnowplowConfig,
    build_cluster,
    build_fuzz_loop,
    chaos_json,
    format_chaos,
    format_scaling,
    fuzz_campaign_config,
    fuzz_run_seed,
    run_chaos_campaign,
    run_scaling_campaign,
    scaling_json,
    train_pmm,
)
from repro.snowplow.campaign import TrainedPMM
from repro.syzlang import ProgramGenerator, parse_program, serialize_program

__all__ = ["main"]


def _add_kernel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", default="6.8",
                        help="kernel version (6.8/6.9/6.10)")
    parser.add_argument("--kernel-seed", type=int, default=1)
    parser.add_argument("--size", default="default", choices=KNOWN_SIZES)


def _cmd_build_kernel(args) -> int:
    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    print(f"kernel {kernel.version}: {kernel.block_count} blocks, "
          f"{kernel.static_edge_count} static edges, "
          f"{len(kernel.table)} syscall variants, "
          f"{len(kernel.bugs)} planted bugs")
    for subsystem in kernel.table.subsystems():
        blocks = len(kernel.blocks_of_subsystem(subsystem))
        print(f"  {subsystem:<14} {blocks:>6} blocks")
    return 0


def _cmd_train(args) -> int:
    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    trained = train_pmm(
        kernel,
        seed=args.seed,
        corpus_size=args.corpus_size,
        dataset_config=DatasetConfig(
            mutations_per_test=args.mutations, seed=derive_seed(args.seed, "d")
        ),
        pmm_config=PMMConfig(dim=args.dim, seed=derive_seed(args.seed, "m")),
        train_config=TrainConfig(
            epochs=args.epochs, seed=derive_seed(args.seed, "t")
        ),
    )
    if trained.validation is not None:
        print(f"validation F1: {trained.validation.f1:.3f} "
              f"(threshold {trained.model.decision_threshold:.2f})")
    save_pmm(args.out, trained.model, trained.vocab, kernel.table)
    print(f"checkpoint written to {args.out}")
    return 0


def _load_trained(args, kernel) -> TrainedPMM | None:
    """A TrainedPMM from --model, or None for --baseline/--oracle."""
    if args.baseline or getattr(args, "oracle", False):
        return None
    if not args.model:
        print("--model is required unless --baseline or --oracle is given",
              file=sys.stderr)
        return None
    model, vocab, encoder = load_pmm(args.model, kernel.table)
    return TrainedPMM(
        model=model, encoder=encoder, vocab=vocab,
        dataset=None, validation=None,
    )


def _fuzz_config(args, batch_size: int | None = None) -> CampaignConfig:
    return fuzz_campaign_config(
        args.hours, args.seed, args.seed_corpus, batch_size
    )


def _export_observer(observer: Observer | None, directory) -> None:
    if observer is None:
        return
    paths = observer.export(directory)
    print(f"  telemetry: {', '.join(sorted(paths))} -> {directory}")


def _parse_directed_spec(spec: str) -> tuple[str, str] | None:
    """``patch:<from>..<to>`` -> (from, to), or None when malformed."""
    if not spec.startswith("patch:"):
        return None
    from_version, sep, to_version = spec[len("patch:"):].partition("..")
    if not sep or not from_version or not to_version:
        return None
    return from_version, to_version


def _cmd_fuzz(args) -> int:
    directed_versions = None
    if args.directed:
        directed_versions = _parse_directed_spec(args.directed)
        if directed_versions is None:
            print(f"bad --directed spec {args.directed!r} "
                  f"(expected patch:<from>..<to>)", file=sys.stderr)
            return 2
        if args.baseline:
            print("--directed needs the Snowplow loop; drop --baseline",
                  file=sys.stderr)
            return 2
        if args.workers > 1:
            print("--directed runs single-worker; drop --workers",
                  file=sys.stderr)
            return 2
    kernel = build_kernel(
        directed_versions[1] if directed_versions else args.kernel,
        seed=args.kernel_seed, size=args.size,
    )
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    config = _fuzz_config(args, batch_size=args.batch_size)
    run_seed = fuzz_run_seed(args.seed, kernel.version)
    oracle = args.oracle
    trained = _load_trained(args, kernel)
    if trained is None and not (args.baseline or oracle):
        return 2
    observer = (
        Observer(slo=SLOEngine(DEFAULT_PACKS["default"]()))
        if args.observe_dir else None
    )
    if args.workers > 1:
        cluster = build_cluster(
            kernel, trained, run_seed, config,
            cluster_config=ClusterConfig(
                workers=args.workers, shards=args.shards,
            ),
            baseline=args.baseline, oracle=oracle, observer=observer,
        )
        result = cluster.run()
        stats = result.merged
        label = "syzkaller" if args.baseline else "snowplow"
        print(f"[{label} x{args.workers}] {args.hours:.1f} virtual hours on "
              f"{kernel.version}: {result.final_edges} fleet edges, "
              f"{result.final_blocks} blocks, {stats.executions} executions, "
              f"hub {result.hub_stats.accepted} entries "
              f"({result.hub_stats.duplicates} duplicates)")
        for worker_id, worker_stats in enumerate(result.worker_stats):
            print(f"  worker {worker_id}: {worker_stats.final_edges} edges, "
                  f"{worker_stats.executions} executions, "
                  f"pushed {worker_stats.hub_pushed}, "
                  f"pulled {worker_stats.hub_pulled}")
        if result.service_stats is not None:
            service = result.service_stats
            print(f"  inference: {service.completed} completed, "
                  f"mean batch {service.mean_batch_size:.2f}, "
                  f"p95 queue delay {service.p95_queue_delay:.0f}s")
        for crash in stats.crashes:
            tag = "NEW" if crash.is_new else "known"
            print(f"  crash [{tag}] {crash.signature}")
        _export_observer(observer, args.observe_dir)
        return 0
    analysis = None
    if args.skip_dead_targets and not args.baseline:
        from repro.analyze import ReachabilityAnalysis

        analysis = ReachabilityAnalysis(kernel, observer=observer)
        print(f"static analysis: {len(analysis.dead_blocks())} dead "
              f"blocks will be skipped as directed targets")
    director = None
    if directed_versions is not None:
        from repro.analyze import PatchDirector, build_target_manifest

        old = build_kernel(
            directed_versions[0], seed=args.kernel_seed, size=args.size
        )
        manifest = build_target_manifest(old, kernel)
        counts = manifest.counts()
        director = PatchDirector(kernel, manifest, observer=observer)
        print(f"patch {old.version} -> {kernel.version}: "
              f"{len(director.targets)} fuzzable changed block(s) "
              f"({counts['solvable']} solvable, "
              f"{counts['unsteerable']} unsteerable, "
              f"{counts['unreachable']} statically unreachable)")
    loop = build_fuzz_loop(
        kernel, trained, run_seed, config, baseline=args.baseline,
        oracle=oracle, observer=observer, analysis=analysis,
        director=director,
    )
    label = "syzkaller" if args.baseline else "snowplow"
    stats = loop.run()
    print(f"[{label}] {args.hours:.1f} virtual hours on {kernel.version}: "
          f"{stats.final_edges} edges, {stats.final_blocks} blocks, "
          f"{stats.executions} executions, corpus {stats.corpus_size}")
    if getattr(stats, "dead_targets_skipped", 0):
        print(f"  skipped {stats.dead_targets_skipped} statically dead "
              f"frontier targets")
    if director is not None:
        reached = len(director.reached_at)
        total = len(director.targets)
        if director.complete and total:
            last = max(director.reached_at.values())
            print(f"  directed: all {total} changed blocks reached "
                  f"(last at t={last / 3600.0:.2f}h)")
        else:
            print(f"  directed: {reached}/{total} changed blocks reached "
                  f"by the horizon")
    for observation in stats.observations[:: max(len(stats.observations) // 8, 1)]:
        print(f"  t={observation.time / 3600.0:5.2f}h "
              f"edges={observation.edges}")
    for crash in stats.crashes:
        tag = "NEW" if crash.is_new else "known"
        print(f"  crash [{tag}] {crash.signature}")
    _export_observer(observer, args.observe_dir)
    return 0


def _cmd_cluster(args) -> int:
    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    if args.mode == "chaos":
        return _cmd_cluster_chaos(args, kernel)
    try:
        counts = tuple(
            int(piece) for piece in args.worker_counts.split(",") if piece
        )
    except ValueError:
        print(f"bad --worker-counts {args.worker_counts!r}", file=sys.stderr)
        return 2
    if not counts or any(count < 1 for count in counts):
        print(f"bad --worker-counts {args.worker_counts!r}", file=sys.stderr)
        return 2
    config = _fuzz_config(args, batch_size=args.batch_size)
    oracle = args.oracle
    trained = _load_trained(args, kernel)
    if trained is None and not (args.baseline or oracle):
        return 2
    result = run_scaling_campaign(
        kernel, trained, config,
        worker_counts=counts,
        cluster_config=ClusterConfig(
            workers=max(counts), sync_interval=args.sync_interval,
            shards=args.shards,
            heartbeat_deadline=args.heartbeat_deadline,
        ),
        baseline=args.baseline, oracle=oracle,
        observe=bool(args.observe_dir),
    )
    print(scaling_json(result) if args.json else format_scaling(result))
    if args.observe_dir:
        for point in result.points:
            if point.observer is not None and point.observer.slo is None:
                point.observer.slo = SLOEngine(DEFAULT_PACKS["default"]())
            _export_observer(
                point.observer,
                Path(args.observe_dir) / f"workers{point.workers}",
            )
    return 0


def _cmd_cluster_chaos(args, kernel) -> int:
    """The chaos gate: one supervised fleet under the seeded fault plan,
    exiting non-zero unless every robustness invariant holds."""
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    config = _fuzz_config(args, batch_size=args.batch_size)
    oracle = args.oracle
    trained = _load_trained(args, kernel)
    if trained is None and not (args.baseline or oracle):
        return 2
    deadline = (
        args.heartbeat_deadline
        if args.heartbeat_deadline is not None else 900.0
    )
    result = run_chaos_campaign(
        kernel, trained, config,
        cluster_config=ClusterConfig(
            workers=args.workers, sync_interval=args.sync_interval,
            shards=args.shards, heartbeat_deadline=deadline,
        ),
        baseline=args.baseline, oracle=oracle,
        observe=bool(args.observe_dir),
    )
    print(chaos_json(result) if args.json else format_chaos(result))
    if args.observe_dir and result.observer is not None:
        if result.observer.slo is None:
            result.observer.slo = SLOEngine(DEFAULT_PACKS["supervision"]())
        _export_observer(result.observer, args.observe_dir)
    # The gate contract: any invariant violation (corpus loss,
    # non-monotone coverage, excessive degradation, non-identical
    # resume) must surface as a non-zero exit, JSON mode included.
    return 0 if result.passed() else 1


# ----- the campaign service (repro.service) -----


def _load_server(args, create: bool = False):
    """The persisted service for --state-dir, or None (with a message)."""
    from repro.service import ServiceServer, load_service, service_exists

    if service_exists(args.state_dir):
        return load_service(args.state_dir)
    if create:
        return ServiceServer(
            fleet_size=args.fleet_size, time_slice=args.time_slice
        )
    print(f"no service state under {args.state_dir} "
          f"(run `repro serve` or `repro submit` first)", file=sys.stderr)
    return None


def _respond(response, as_json: bool) -> int:
    """Print a service response; exit 0 on 2xx, 1 otherwise."""
    if as_json:
        print(response.json())
    elif not response.ok:
        print(f"error {response.status}: "
              f"{response.body.get('error', '')}", file=sys.stderr)
    return 0 if response.ok else 1


def _cmd_serve(args) -> int:
    """Admit + schedule: advance the service clock, then persist."""
    from repro.service import (
        Request,
        format_service_health,
        save_service,
    )

    server = _load_server(args, create=True)
    server.handle(Request("POST", "/advance", {"until": args.until}))
    save_service(args.state_dir, server)
    health = server.handle(Request("GET", "/health"))
    if args.json:
        print(health.json())
    else:
        print(format_service_health(health.body))
    if args.report_out:
        Path(args.report_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report_out).write_text(
            format_service_health(health.body)
        )
        print(f"service health report -> {args.report_out}")
    return 0


def _cmd_submit(args) -> int:
    from repro.service import Request, save_service

    server = _load_server(args, create=True)
    mode = (
        "baseline" if args.baseline
        else ("model" if args.model else "oracle")
    )
    params = {
        "tenant": args.tenant,
        "kernel": args.kernel,
        "kernel_seed": args.kernel_seed,
        "size": args.size,
        "mode": mode,
        "model": args.model,
        "hours": args.hours,
        "seed": args.seed,
        "seed_corpus": args.seed_corpus,
        "workers": args.workers,
        "shards": args.shards,
        "batch_size": args.batch_size,
        "heartbeat_deadline": args.heartbeat_deadline,
        "faults": json.loads(Path(args.faults).read_text())
        if args.faults else None,
        "max_concurrent": args.max_concurrent,
        "budget_hours": args.budget_hours,
        "priority": args.priority,
    }
    response = server.handle(Request("POST", "/campaigns", params))
    if response.ok:
        save_service(args.state_dir, server)
        if not args.json:
            job = response.body["job"]
            print(f"submitted {job['job_id']} for tenant "
                  f"{job['tenant']}: {job['spec']['mode']} on kernel "
                  f"{job['spec']['kernel']}, {job['spec']['hours']:.1f}h x "
                  f"{job['spec']['workers']} worker(s) [{job['state']}]")
    return _respond(response, args.json)


def _cmd_status(args) -> int:
    from repro.service import Request, format_service_health

    server = _load_server(args)
    if server is None:
        return 2
    if args.campaign:
        response = server.handle(
            Request("GET", f"/campaigns/{args.campaign}")
        )
        if response.ok and not args.json:
            job = response.body["job"]
            done = job["local_now"] / max(job["horizon"], 1.0)
            print(f"{job['job_id']} [{job['tenant']}] {job['state']}: "
                  f"{100.0 * min(done, 1.0):.1f}% of "
                  f"{job['horizon'] / 3600.0:.1f}h"
                  + (f" — {job['message']}" if job["message"] else ""))
        return _respond(response, args.json)
    if args.tenant:
        response = server.handle(Request("GET", f"/tenants/{args.tenant}"))
        if response.ok and not args.json:
            body = response.body
            print(f"tenant {body['tenant']}: {body['running']} running, "
                  f"{body['completed']} done, {body['cancelled']} "
                  f"cancelled, {body['rejected']} rejected; "
                  f"budget {body['budget_remaining']:.1f}h of "
                  f"{body['quota']['budget_hours']:.1f}h left; "
                  f"jobs: {', '.join(body['jobs']) or '(none)'}")
        return _respond(response, args.json)
    response = server.handle(Request("GET", "/health"))
    if args.json:
        print(response.json())
    else:
        print(format_service_health(response.body))
    return 0


def _cmd_cancel(args) -> int:
    from repro.service import Request, save_service

    server = _load_server(args)
    if server is None:
        return 2
    response = server.handle(
        Request("POST", f"/campaigns/{args.campaign}/cancel")
    )
    if response.ok:
        save_service(args.state_dir, server)
        if not args.json:
            job = response.body["job"]
            print(f"{job['job_id']}: {job['state']}"
                  + (f" — {job['message']}" if job["message"] else ""))
    return _respond(response, args.json)


# ----- telemetry post-processing -----


def _cmd_observe_render(args) -> int:
    tracer = load_spans_jsonl(Path(args.spans).read_text())
    if args.chrome:
        Path(args.chrome).write_text(chrome_trace(tracer))
        print(f"chrome trace written to {args.chrome} "
              f"(load it in https://ui.perfetto.dev or chrome://tracing)")
    if args.lineage:
        lineage_path = Path(args.spans).parent / Observer.LINEAGE_FILE
        if not lineage_path.exists():
            print(f"no lineage at {lineage_path} "
                  f"(campaign exported without provenance?)",
                  file=sys.stderr)
            return 2
        log = load_lineage(lineage_path.read_text())
        dot_path = lineage_path.with_suffix(".dot")
        dot_path.write_text(lineage_dot(log))
        print(f"lineage DAG written to {dot_path} "
              f"({len(log.records)} entries, render with `dot -Tsvg`)")
    print(flame_summary(tracer), end="")
    return 0


def _cmd_observe_explain(args) -> int:
    directory = Path(args.dir)
    path = directory / Observer.LINEAGE_FILE
    if not path.exists():
        print(f"no lineage at {path} (run the campaign with "
              f"--observe-dir to export it)", file=sys.stderr)
        return 2
    log = load_lineage(path.read_text())
    if args.table:
        Path(args.table).write_text(json.dumps(
            attribution_table(log), sort_keys=True, separators=(",", ":"),
        ) + "\n")
    if args.target == "bugs":
        empty = 0
        for signature in sorted(log.bug_owner):
            kind, resolved, chain = resolve_target(log, f"bug:{signature}")
            print(format_chain(kind, resolved, chain), end="")
            if not chain:
                empty += 1
        print(f"{len(log.bug_owner)} bug(s), {empty} with empty chains")
        print(format_attribution(attribution_table(log)), end="")
        print(format_waterfall(coverage_waterfall(log)), end="")
        return 1 if empty else 0
    try:
        kind, resolved, chain = resolve_target(log, args.target)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 1
    print(format_chain(kind, resolved, chain), end="")
    return 0 if chain else 1


def _cmd_observe_diff(args) -> int:
    old = json.loads(Path(args.old).read_text())
    new = json.loads(Path(args.new).read_text())
    print(format_diff(diff_snapshots(old, new)), end="")
    regressions = flag_regressions(old, new, threshold_pct=args.threshold)
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:")
        for regression in regressions:
            print(f"  {regression.describe()}")
        return 1
    return 0


def _load_slo_store(args):
    """The time-series store named by ``--timeseries`` (or the
    ``timeseries.json`` sibling of the metrics file)."""
    path = Path(
        args.timeseries
        if args.timeseries
        else Path(args.metrics).parent / Observer.TIMESERIES_FILE
    )
    if not path.exists():
        print(f"no time-series at {path}", file=sys.stderr)
        return None
    return load_timeseries(path.read_text())


def _evaluate_slo(pack: str, store) -> tuple[list, list]:
    rules = DEFAULT_PACKS[pack]()
    return rules, SLOEngine(rules).evaluate(store)


def _cmd_observe_check(args) -> int:
    snapshot = json.loads(Path(args.metrics).read_text())
    keys: set[str] = set()
    for kind in ("counters", "gauges", "histograms"):
        keys.update(snapshot.get(kind, {}))
    missing = [
        required for required in args.require
        if not any(required in key for key in keys)
    ]
    for required in missing:
        print(f"missing expected series: {required!r}", file=sys.stderr)
    if missing:
        return 1
    print(f"all {len(args.require)} expected series present "
          f"({len(keys)} series in snapshot)")
    if args.slo is None:
        return 0
    store = _load_slo_store(args)
    if store is None:
        return 1
    rules, alerts = _evaluate_slo(args.slo, store)
    for alert in alerts:
        print(f"  [{alert.severity}] t={alert.time:,.0f}s "
              f"{alert.rule}: {alert.message}")
    critical = [alert for alert in alerts if alert.severity == "critical"]
    print(f"slo pack {args.slo!r}: {len(rules)} rule(s), "
          f"{len(alerts)} alert(s), {len(critical)} critical")
    if critical or (alerts and args.strict):
        return 1
    return 0


def _cmd_observe_report(args) -> int:
    directory = Path(args.dir)
    metrics_path = directory / Observer.METRICS_FILE
    if not metrics_path.exists():
        print(f"no metrics at {metrics_path}", file=sys.stderr)
        return 2
    snapshot = json.loads(metrics_path.read_text())
    timeseries_path = directory / Observer.TIMESERIES_FILE
    store = (
        load_timeseries(timeseries_path.read_text())
        if timeseries_path.exists() else None
    )
    rules = alerts = None
    if store is not None:
        rules, alerts = _evaluate_slo(args.slo, store)
        (directory / Observer.ALERTS_FILE).write_text(alerts_json(alerts))
    extra = {}
    for other in args.compare:
        extra.update(
            model_quality_summary(json.loads(Path(other).read_text()))
        )
    text = campaign_report(
        snapshot, store=store, alerts=alerts, rules=rules,
        extra_summaries=extra, title=args.title,
    )
    if args.out:
        Path(args.out).write_text(text)
    print(text, end="")
    if alerts is not None and any(
        alert.severity == "critical" for alert in alerts
    ):
        return 1
    return 0


# ----- static analysis -----


def _analyze_guard(func):
    """The analyze exit-code contract: 0 clean, 1 findings, 2 broken.

    Findings-driven failures return 1 from the subcommand body; every
    unhandled exception (bad release names, I/O failures, analysis
    bugs) is mapped to exit 2 here so a red ``--strict`` gate is never
    confused with the linter itself falling over.
    """
    def wrapper(args) -> int:
        try:
            return func(args)
        except KeyboardInterrupt:
            raise
        except Exception as error:
            print(f"analyze: internal error: {error}", file=sys.stderr)
            return 2
    return wrapper


def _analyze_observer(args) -> Observer | None:
    return Observer() if getattr(args, "observe_dir", None) else None


def _finish_analyze(args, findings, observer, context) -> int:
    """Shared tail of the analyze subcommands: print, write, gate."""
    from repro.analyze import findings_json, strict_failures

    counts = {"info": 0, "warning": 0, "error": 0}
    for finding in findings:
        counts[finding.severity] += 1
    print(f"{len(findings)} finding(s): "
          f"{counts['error']} error, {counts['warning']} warning, "
          f"{counts['info']} info")
    shown = [f for f in findings if f.severity != "info"][: args.max_print]
    for finding in shown:
        print(f"  [{finding.severity}] {finding.check} @ "
              f"{finding.location}: {finding.message}")
    remaining = len(findings) - len(shown)
    if remaining > 0:
        print(f"  ... {remaining} more (see --out)")
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(findings_json(findings, **context))
        print(f"findings written to {args.out}")
    _export_observer(observer, getattr(args, "observe_dir", None))
    if args.strict and strict_failures(findings):
        print(f"--strict: {counts['error']} error-severity finding(s)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_analyze_kernel(args) -> int:
    from repro.analyze import (
        DependencyOracle,
        ReachabilityAnalysis,
        run_kernel_checks,
    )

    releases = [
        piece for piece in (args.releases or args.kernel).split(",") if piece
    ]
    observer = _analyze_observer(args)
    findings = []
    for version in releases:
        kernel = build_kernel(version, seed=args.kernel_seed, size=args.size)
        reach = ReachabilityAnalysis(kernel, observer=observer)
        oracle = DependencyOracle(kernel)
        dead = reach.dead_blocks()
        namespace = f"{version}/" if len(releases) > 1 else ""
        findings += run_kernel_checks(
            kernel, reach, oracle, observer=observer, namespace=namespace,
        )
        print(f"kernel {version}: {len(kernel.blocks)} blocks, "
              f"{len(dead)} statically dead")
    return _finish_analyze(
        args, findings, observer,
        {"scope": "kernel", "releases": releases, "size": args.size,
         "kernel_seed": args.kernel_seed},
    )


def _cmd_analyze_corpus(args) -> int:
    from repro.analyze import run_corpus_checks

    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    observer = _analyze_observer(args)
    # The same derivation the fuzz subcommand uses, so `analyze corpus`
    # lints exactly the seed corpus a smoke campaign starts from.
    run_seed = derive_seed(args.seed, "cli-fuzz", kernel.version)
    programs = ProgramGenerator(
        kernel.table, split(run_seed, "seed-corpus")
    ).seed_corpus(args.seed_corpus)
    findings = run_corpus_checks(kernel, programs, observer=observer)
    print(f"corpus: {len(programs)} programs "
          f"({sum(len(p.calls) for p in programs)} calls) on "
          f"kernel {kernel.version}")
    return _finish_analyze(
        args, findings, observer,
        {"scope": "corpus", "releases": [kernel.version],
         "size": args.size, "kernel_seed": args.kernel_seed,
         "seed": args.seed, "seed_corpus": args.seed_corpus},
    )


def _cmd_analyze_oracle(args) -> int:
    from repro.analyze import StaticOracleLocalizer, static_truths
    from repro.pmm import evaluate_selector
    from repro.snowplow import format_table1

    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    trained = train_pmm(
        kernel,
        seed=args.seed,
        corpus_size=args.corpus_size,
        dataset_config=DatasetConfig(
            mutations_per_test=args.mutations,
            seed=derive_seed(args.seed, "d"),
        ),
        pmm_config=PMMConfig(dim=args.dim, seed=derive_seed(args.seed, "m")),
        train_config=TrainConfig(
            epochs=args.epochs if args.compare_pmm else 0,
            seed=derive_seed(args.seed, "t"),
        ),
    )
    dataset = trained.dataset
    holdout = dataset.evaluation[: args.eval_limit]
    if not holdout:
        print("dataset produced no evaluation examples", file=sys.stderr)
        return 2
    localizer = StaticOracleLocalizer(kernel)
    truths = static_truths(localizer, dataset.programs, holdout)
    oracle_predictions = [
        set(localizer.target_paths(
            dataset.programs[example.base_index], example.targets
        ))
        for example in holdout
    ]
    oracle_metrics = evaluate_selector(oracle_predictions, truths)
    print(f"static oracle on {len(holdout)} eval examples "
          f"(kernel {kernel.version}): "
          f"precision {oracle_metrics.precision:.3f}, "
          f"recall {oracle_metrics.recall:.3f}")
    if args.compare_pmm:
        from repro.fuzzer import RandomLocalizer
        from repro.rng import make_rng

        pmm_predictions = [
            set(trained.model.predict_paths(
                dataset.encode_example(example, kernel, trained.encoder)
            ))
            for example in holdout
        ]
        pmm_metrics = evaluate_selector(pmm_predictions, truths)
        k = max(1, round(sum(len(t) for t in truths) / len(truths)))
        rng = make_rng(derive_seed(args.seed, "rand-baseline"))
        random_predictions = [
            set(RandomLocalizer(k).localize(
                dataset.programs[example.base_index], None, None, rng
            ))
            for example in holdout
        ]
        random_metrics = evaluate_selector(random_predictions, truths)
        print(format_table1(
            pmm_metrics, random_metrics, f"Rand.{k}",
            static_oracle=oracle_metrics,
        ))
    if args.out:
        payload = {
            "kernel": kernel.version,
            "examples": len(holdout),
            "oracle": {
                "f1": oracle_metrics.f1,
                "precision": oracle_metrics.precision,
                "recall": oracle_metrics.recall,
                "jaccard": oracle_metrics.jaccard,
            },
        }
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"metrics written to {args.out}")
    return 0 if oracle_metrics.precision == oracle_metrics.recall == 1.0 else 1


def _cmd_analyze_impact(args) -> int:
    from repro.analyze import (
        DependencyOracle,
        ReachabilityAnalysis,
        build_target_manifest,
        compute_impact,
        run_impact_checks,
    )

    old = build_kernel(
        args.from_version, seed=args.kernel_seed, size=args.size
    )
    new = build_kernel(args.to_version, seed=args.kernel_seed, size=args.size)
    observer = _analyze_observer(args)
    report = compute_impact(old, new)
    reach = ReachabilityAnalysis(new, observer=observer)
    oracle = DependencyOracle(new)
    manifest = build_target_manifest(
        old, new, report=report, reach=reach, oracle=oracle
    )
    counts = manifest.counts()
    modified = sum(
        1 for diff in report.handlers if diff.status == "modified"
    )
    print(f"impact {old.version} -> {new.version}: "
          f"{len(report.added_handlers)} added, "
          f"{len(report.removed_handlers)} removed, "
          f"{modified} modified handler(s); "
          f"{len(report.changed_blocks())} changed block(s), "
          f"{len(report.changed_predicates)} changed predicate(s), "
          f"{len(report.touched_bugs)} touched bug chain(s)")
    print(f"  targets: {counts['solvable']} solvable, "
          f"{counts['unsteerable']} unsteerable, "
          f"{counts['unreachable']} unreachable")
    if args.manifest:
        Path(args.manifest).parent.mkdir(parents=True, exist_ok=True)
        Path(args.manifest).write_text(manifest.to_json())
        print(f"target manifest written to {args.manifest}")
    findings = run_impact_checks(
        report, manifest, old, new, observer=observer
    )
    return _finish_analyze(
        args, findings, observer,
        {"scope": "impact",
         "releases": [old.version, new.version],
         "size": args.size, "kernel_seed": args.kernel_seed},
    )


# ----- spec inference -----


def _specgen_releases(args) -> list[str]:
    return [
        piece for piece in (args.releases or args.kernel).split(",") if piece
    ]


def _specgen_path(out_dir: Path, version: str) -> Path:
    return out_dir / f"specs_{version.replace('.', '_')}.syz"


def _cmd_specgen_infer(args) -> int:
    from repro.analyze import strict_failures, table_mismatch_findings
    from repro.specgen import infer_specs, parse_table, serialize_table

    observer = _analyze_observer(args)
    findings = []
    exit_code = 0
    for version in _specgen_releases(args):
        kernel = build_kernel(version, seed=args.kernel_seed, size=args.size)
        table, report = infer_specs(kernel, observer=observer)
        text = serialize_table(
            table,
            comment=f"inferred from kernel {version} "
                    f"(seed={args.kernel_seed}, size={args.size})",
        )
        if parse_table(text) != table:
            print(f"{version}: emitted syzlang does not round-trip",
                  file=sys.stderr)
            exit_code = 1
        print(f"kernel {version}: inferred {report.syscalls} specs, "
              f"{report.args_total} args ({report.resource_args} resources, "
              f"{report.flag_leaves} flag leaves / {report.flag_bits} bits, "
              f"{report.struct_nodes} structs), {report.producers} "
              f"producers, {len(report.state_edges)} state edges")
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = _specgen_path(out_dir, version)
            path.write_text(text)
            print(f"  syzlang written to {path}")
        if args.lint:
            namespace = f"{version}/" if len(_specgen_releases(args)) > 1 \
                else ""
            produced = table_mismatch_findings(
                kernel, table, namespace=namespace
            )
            findings += produced
            print(f"  lint: {len(produced)} finding(s), "
                  f"{len(strict_failures(produced))} error(s)")
    _export_observer(observer, getattr(args, "observe_dir", None))
    for finding in strict_failures(findings):
        print(f"  [error] {finding.check} @ {finding.location}: "
              f"{finding.message}")
    if args.strict and strict_failures(findings):
        print("--strict: inferred table disagrees with the kernel",
              file=sys.stderr)
        return 1
    return exit_code


_SPECGEN_FLOORS = (
    # (option attr, TableFidelity property, human name)
    ("min_syscall_coverage", "syscall_coverage", "syscall coverage"),
    ("min_kind_accuracy", "kind_accuracy", "argument-kind accuracy"),
    ("min_flag_recall", "flag_recall", "flag-domain recall"),
    ("min_resource_precision", "resource_precision", "resource precision"),
    ("min_resource_recall", "resource_recall", "resource recall"),
)


def _check_fidelity_floors(args, fidelities) -> list[str]:
    failures = []
    for fidelity in fidelities:
        for attr, prop, name in _SPECGEN_FLOORS:
            floor = getattr(args, attr)
            value = getattr(fidelity, prop)
            if value < floor:
                failures.append(
                    f"{fidelity.version}: {name} {value:.3f} "
                    f"below floor {floor:.3f}"
                )
    return failures


def _cmd_specgen_diff(args) -> int:
    from repro.specgen import diff_tables, fidelity_json, infer_table
    from repro.syzlang.stdlib import build_standard_table

    observer = _analyze_observer(args)
    fidelities = []
    print(f"{'Kernel':<7} {'Specs':>11} {'KindAcc':>8} {'FlagRec':>8} "
          f"{'ResPrec':>8} {'ResRec':>8}")
    for version in _specgen_releases(args):
        kernel = build_kernel(version, seed=args.kernel_seed, size=args.size)
        fidelity = diff_tables(
            infer_table(kernel, observer=observer),
            build_standard_table(version),
            version=version,
        )
        fidelities.append(fidelity)
        specs = f"{fidelity.matched_syscalls}/{fidelity.truth_syscalls}"
        print(f"{version:<7} {specs:>11} {fidelity.kind_accuracy:>8.3f} "
              f"{fidelity.flag_recall:>8.3f} "
              f"{fidelity.resource_precision:>8.3f} "
              f"{fidelity.resource_recall:>8.3f}")
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(fidelity_json(
            fidelities, size=args.size, kernel_seed=args.kernel_seed,
        ))
        print(f"fidelity report written to {args.out}")
    _export_observer(observer, getattr(args, "observe_dir", None))
    failures = _check_fidelity_floors(args, fidelities)
    for failure in failures:
        print(f"  [floor] {failure}", file=sys.stderr)
    if args.strict and failures:
        print(f"--strict: {len(failures)} fidelity floor(s) violated",
              file=sys.stderr)
        return 1
    return 0


def _cmd_specgen_campaign(args) -> int:
    from repro.snowplow import format_specgen, specgen_json
    from repro.specgen import run_specgen_campaign

    observer = _analyze_observer(args)
    result = run_specgen_campaign(
        versions=tuple(_specgen_releases(args)),
        seed=args.seed,
        kernel_seed=args.kernel_seed,
        size=args.size,
        hours=args.hours,
        seed_corpus=args.seed_corpus,
        observer=observer,
    )
    print(specgen_json(result) if args.json else format_specgen(result))
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(specgen_json(result) + "\n")
        print(f"campaign report written to {args.out}")
    _export_observer(observer, getattr(args, "observe_dir", None))
    failures = [
        f"{run.version}: coverage ratio {run.coverage_ratio:.3f} "
        f"below floor {args.min_ratio:.3f}"
        for run in result.runs
        if run.coverage_ratio < args.min_ratio
    ]
    for failure in failures:
        print(f"  [floor] {failure}", file=sys.stderr)
    if args.strict and failures:
        print(f"--strict: {len(failures)} coverage floor(s) violated",
              file=sys.stderr)
        return 1
    return 0


def _cmd_exec(args) -> int:
    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    with open(args.prog) as handle:
        program = parse_program(handle.read(), kernel.table)
    result = Executor(kernel, seed=args.seed).run(program)
    print(f"{len(result.coverage.blocks)} blocks, "
          f"{len(result.coverage.edges)} edges covered")
    print(f"returns: {result.retvals}")
    if result.crash is not None:
        print(f"CRASH: {result.crash.description}")
        return 1
    return 0


def _cmd_triage(args) -> int:
    from repro.fuzzer.crash import CrashTriage
    from repro.kernel import symbolize

    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    with open(args.prog) as handle:
        program = parse_program(handle.read(), kernel.table)
    executor = Executor(kernel, seed=args.seed)
    result = executor.run(program)
    if result.crash is None:
        print("program does not crash the kernel")
        return 1
    triage = CrashTriage(executor, set())
    crash = triage.observe(program, result.crash)
    if crash is None:
        print(f"crash filtered by triage rules: {result.crash.description}")
        return 1
    print(f"signature: {crash.signature}")
    print(f"category:  {crash.category.value}")
    print(symbolize(kernel, result.crash).report())
    reproducer = triage.reproduce(crash)
    if reproducer is None:
        print("no reproducer (crash does not replay)")
        return 0
    print(f"minimised reproducer ({len(reproducer)} calls):")
    print(serialize_program(reproducer))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Snowplow reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build-kernel", help="build and describe a kernel")
    _add_kernel_args(p)
    p.set_defaults(func=_cmd_build_kernel)

    p = sub.add_parser("train", help="train PMM and write a checkpoint")
    _add_kernel_args(p)
    p.add_argument("--out", required=True, help="checkpoint path (.npz)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--corpus-size", type=int, default=120)
    p.add_argument("--mutations", type=int, default=120)
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--dim", type=int, default=32)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("fuzz", help="run a fuzzing campaign")
    _add_kernel_args(p)
    p.add_argument("--model", help="PMM checkpoint (Snowplow mode)")
    p.add_argument("--baseline", action="store_true",
                   help="run plain Syzkaller instead of Snowplow")
    p.add_argument("--oracle", action="store_true",
                   help="use the white-box oracle localizer (no model)")
    p.add_argument("--hours", type=float, default=1.0,
                   help="virtual hours to fuzz")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--seed-corpus", type=int, default=100)
    p.add_argument("--workers", type=int, default=1,
                   help="fleet size; >1 runs a hub-synced cluster")
    p.add_argument("--shards", type=int, default=1,
                   help="corpus-hub shards; >1 enables the sharded hub "
                        "(cluster mode only)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="serving-tier max batch size (1 disables batching)")
    p.add_argument("--observe-dir", default=None,
                   help="export trace/metrics/flame telemetry here")
    p.add_argument("--skip-dead-targets", action="store_true",
                   help="run static reachability analysis first and never "
                        "pick statically dead blocks as directed targets "
                        "(single-worker Snowplow mode)")
    p.add_argument("--directed", default=None, metavar="patch:FROM..TO",
                   help="patch-directed mode: fuzz the TO release with "
                        "scheduling steered toward the blocks the "
                        "FROM..TO diff changed (single-worker Snowplow "
                        "mode; overrides --kernel with TO)")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "cluster",
        help="fleet campaigns: the scaling sweep or the chaos gate",
    )
    _add_kernel_args(p)
    p.add_argument("mode", nargs="?", choices=("scale", "chaos"),
                   default="scale",
                   help="scale: fleet-size sweep; chaos: supervised fleet "
                        "under the seeded fault plan (exit 1 on any "
                        "invariant violation)")
    p.add_argument("--model", help="PMM checkpoint (Snowplow mode)")
    p.add_argument("--baseline", action="store_true",
                   help="sweep plain Syzkaller fleets instead of Snowplow")
    p.add_argument("--oracle", action="store_true",
                   help="use the white-box oracle localizer (no model)")
    p.add_argument("--hours", type=float, default=1.0,
                   help="virtual hours per worker")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--seed-corpus", type=int, default=100)
    p.add_argument("--worker-counts", default="1,2,4,8",
                   help="comma-separated fleet sizes to sweep (scale mode)")
    p.add_argument("--workers", type=int, default=4,
                   help="fleet size (chaos mode)")
    p.add_argument("--shards", type=int, default=1,
                   help="corpus-hub shards; >1 enables the sharded hub")
    p.add_argument("--heartbeat-deadline", type=float, default=None,
                   help="virtual seconds of worker silence before the "
                        "supervisor restarts it (chaos mode defaults to 900)")
    p.add_argument("--sync-interval", type=float, default=600.0,
                   help="virtual seconds between hub syncs")
    p.add_argument("--batch-size", type=int, default=None,
                   help="serving-tier max batch size (1 disables batching)")
    p.add_argument("--observe-dir", default=None,
                   help="export per-fleet-size telemetry under this directory")
    p.add_argument("--json", action="store_true",
                   help="print machine-readable JSON instead of the text "
                        "table (exit codes are unchanged)")
    p.set_defaults(func=_cmd_cluster)

    # --- the campaign service ---

    def _add_state_dir(q):
        q.add_argument("--state-dir", required=True,
                       help="directory holding the service checkpoint "
                            "(service.json, format v7)")
        q.add_argument("--json", action="store_true",
                       help="print the raw API response as JSON")

    p = sub.add_parser(
        "serve",
        help="advance the campaign service: admit queued campaigns, "
             "time-slice the fleet, checkpoint, print the health report",
    )
    _add_state_dir(p)
    p.add_argument("--fleet-size", type=int, default=4,
                   help="shared fleet worker slots (new services only)")
    p.add_argument("--time-slice", type=float, default=1800.0,
                   help="virtual seconds per scheduling slice "
                        "(new services only)")
    p.add_argument("--until", type=float, default=None,
                   help="stop at this service virtual time (seconds); "
                        "default runs every admitted campaign to its "
                        "horizon")
    p.add_argument("--report-out", default=None,
                   help="also write the health report to this path")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a campaign to the service as a tenant"
    )
    _add_state_dir(p)
    p.add_argument("--fleet-size", type=int, default=4,
                   help="fleet size if this submit creates the service")
    p.add_argument("--time-slice", type=float, default=1800.0,
                   help="scheduling slice if this submit creates the service")
    p.add_argument("--tenant", required=True, help="tenant (session) name")
    _add_kernel_args(p)
    p.add_argument("--model", help="PMM checkpoint (Snowplow mode)")
    p.add_argument("--baseline", action="store_true",
                   help="run plain Syzkaller instead of Snowplow")
    p.add_argument("--hours", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--seed-corpus", type=int, default=100)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--batch-size", type=int, default=None)
    p.add_argument("--heartbeat-deadline", type=float, default=None,
                   help="attach a fleet supervisor (cluster campaigns)")
    p.add_argument("--faults", default=None,
                   help="JSON file with a FaultPlan.to_dict() payload to "
                        "inject into this campaign")
    p.add_argument("--priority", type=int, default=None,
                   help="tenant priority (higher admits first)")
    p.add_argument("--max-concurrent", type=int, default=None,
                   help="tenant cap on concurrently running campaigns")
    p.add_argument("--budget-hours", type=float, default=None,
                   help="tenant budget in virtual worker-hours")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "status",
        help="service health report, one campaign, or one tenant",
    )
    _add_state_dir(p)
    p.add_argument("--campaign", default=None, help="campaign id (job-N)")
    p.add_argument("--tenant", default=None, help="tenant name")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("cancel", help="cancel a submitted campaign")
    _add_state_dir(p)
    p.add_argument("--campaign", required=True, help="campaign id (job-N)")
    p.set_defaults(func=_cmd_cancel)

    p = sub.add_parser("observe",
                       help="render, diff, and check exported telemetry")
    observe_sub = p.add_subparsers(dest="observe_command", required=True)
    q = observe_sub.add_parser(
        "render", help="flame summary (and Chrome trace) from a span log"
    )
    q.add_argument("spans", help="spans.jsonl produced by --observe-dir")
    q.add_argument("--chrome", default=None,
                   help="also write a Chrome/Perfetto trace_event file here")
    q.add_argument("--lineage", action="store_true",
                   help="also render the lineage DAG (lineage.dot next "
                        "to the export's lineage.json)")
    q.set_defaults(func=_cmd_observe_render)
    q = observe_sub.add_parser(
        "explain",
        help="trace a bug/edge/entry back through its mutation lineage",
    )
    q.add_argument("target",
                   help="'bugs' (every bug, exit 1 on any empty chain), "
                        "bug:<sig>, edge:<src>-<dst>, entry:<id>, or a "
                        "bare id tried as bug, then entry, then edge")
    q.add_argument("--dir", required=True,
                   help="--observe-dir export holding lineage.json")
    q.add_argument("--table", default=None,
                   help="also write the per-engine attribution table "
                        "here as canonical JSON")
    q.set_defaults(func=_cmd_observe_explain)
    q = observe_sub.add_parser(
        "diff", help="diff two campaigns' metrics.json snapshots"
    )
    q.add_argument("old", help="baseline metrics.json")
    q.add_argument("new", help="candidate metrics.json")
    q.add_argument("--threshold", type=float, default=10.0,
                   help="regression threshold in percent (exit 1 beyond it)")
    q.set_defaults(func=_cmd_observe_diff)
    q = observe_sub.add_parser(
        "check", help="assert expected series exist in a metrics.json"
    )
    q.add_argument("metrics", help="metrics.json to inspect")
    q.add_argument("--require", action="append", default=[],
                   metavar="SUBSTRING",
                   help="series-key substring that must be present "
                        "(repeatable; exit 1 if any is missing)")
    q.add_argument("--slo", default=None, choices=sorted(DEFAULT_PACKS),
                   help="also evaluate this SLO rule pack over the "
                        "campaign's timeseries.json (exit 1 on critical "
                        "alerts)")
    q.add_argument("--timeseries", default=None,
                   help="timeseries.json to evaluate (default: sibling "
                        "of the metrics file)")
    q.add_argument("--strict", action="store_true",
                   help="exit 1 on any alert, not just critical ones")
    q.set_defaults(func=_cmd_observe_check)
    q = observe_sub.add_parser(
        "report",
        help="render one campaign health report (timelines, SLO "
             "status, model quality) from an --observe-dir export",
    )
    q.add_argument("dir", help="directory written by --observe-dir")
    q.add_argument("--slo", default="default",
                   choices=sorted(DEFAULT_PACKS),
                   help="SLO rule pack to evaluate (alerts.json is "
                        "written next to the inputs)")
    q.add_argument("--compare", action="append", default=[],
                   metavar="METRICS_JSON",
                   help="fold another campaign's metrics.json into the "
                        "model-quality table (cross-release drift; "
                        "repeatable)")
    q.add_argument("--out", default=None,
                   help="also write the report to this file")
    q.add_argument("--title", default="campaign health report")
    q.set_defaults(func=_cmd_observe_report)

    p = sub.add_parser("analyze",
                       help="static kernel/program analysis and lints")
    analyze_sub = p.add_subparsers(dest="analyze_command", required=True)

    def _add_analyze_common(q: argparse.ArgumentParser) -> None:
        q.add_argument("--strict", action="store_true",
                       help="exit 1 if any error-severity finding fires")
        q.add_argument("--out", default=None,
                       help="write canonical findings.json here")
        q.add_argument("--max-print", type=int, default=20,
                       help="max findings echoed to stdout")
        q.add_argument("--observe-dir", default=None,
                       help="export analysis telemetry here")

    q = analyze_sub.add_parser(
        "kernel",
        help="reachability, dependency, and lint checks over kernels",
    )
    _add_kernel_args(q)
    q.add_argument("--releases", default=None,
                   help="comma-separated kernel versions to analyse "
                        "(overrides --kernel; findings get a "
                        "version/ location prefix)")
    _add_analyze_common(q)
    q.set_defaults(func=_analyze_guard(_cmd_analyze_kernel))

    q = analyze_sub.add_parser(
        "corpus",
        help="lint the seed corpus a fuzzing campaign would start from",
    )
    _add_kernel_args(q)
    q.add_argument("--seed", type=int, default=0,
                   help="campaign seed (matches the fuzz subcommand)")
    q.add_argument("--seed-corpus", type=int, default=100,
                   help="corpus size to generate and lint")
    _add_analyze_common(q)
    q.set_defaults(func=_analyze_guard(_cmd_analyze_corpus))

    q = analyze_sub.add_parser(
        "oracle",
        help="score the static dependency oracle as a localizer "
             "(the Table-1 upper bound)",
    )
    _add_kernel_args(q)
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--corpus-size", type=int, default=40)
    q.add_argument("--mutations", type=int, default=80)
    q.add_argument("--epochs", type=int, default=2)
    q.add_argument("--dim", type=int, default=32)
    q.add_argument("--eval-limit", type=int, default=200,
                   help="max evaluation examples to score")
    q.add_argument("--compare-pmm",
                   action="store_true",
                   help="also train a PMM and print the Table-1 gap")
    q.add_argument("--out", default=None,
                   help="write oracle metrics JSON here")
    q.set_defaults(func=_analyze_guard(_cmd_analyze_oracle))

    q = analyze_sub.add_parser(
        "impact",
        help="diff two releases' CFGs, classify every changed block, "
             "and emit the directed-fuzzing target manifest",
    )
    q.add_argument("from_version", metavar="from",
                   help="old kernel version (e.g. 6.8)")
    q.add_argument("to_version", metavar="to",
                   help="new kernel version (e.g. 6.9)")
    q.add_argument("--kernel-seed", type=int, default=1)
    q.add_argument("--size", default="default", choices=KNOWN_SIZES)
    q.add_argument("--manifest", default=None,
                   help="write the TargetManifest JSON here (the file "
                        "`fuzz --directed patch:<from>..<to>` rebuilds)")
    _add_analyze_common(q)
    q.set_defaults(func=_analyze_guard(_cmd_analyze_impact))

    p = sub.add_parser(
        "specgen",
        help="infer syzlang specs from the kernel and fuzz without "
             "ground truth",
    )
    specgen_sub = p.add_subparsers(dest="specgen_command", required=True)

    def _add_specgen_common(q: argparse.ArgumentParser) -> None:
        _add_kernel_args(q)
        q.add_argument("--releases", default=None,
                       help="comma-separated kernel versions "
                            "(overrides --kernel)")
        q.add_argument("--strict", action="store_true",
                       help="exit 1 when a gate condition fails")
        q.add_argument("--observe-dir", default=None,
                       help="export inference-quality telemetry here")

    q = specgen_sub.add_parser(
        "infer",
        help="infer a syscall table per release and emit syzlang text",
    )
    _add_specgen_common(q)
    q.add_argument("--out", default=None,
                   help="directory for the inferred specs_<ver>.syz files")
    q.add_argument("--lint", action="store_true",
                   help="cross-validate each inferred table against its "
                        "kernel (spec-table-mismatch)")
    q.set_defaults(func=_cmd_specgen_infer)

    q = specgen_sub.add_parser(
        "diff",
        help="score inferred tables against the hand-written stdlib",
    )
    _add_specgen_common(q)
    q.add_argument("--out", default=None,
                   help="write the canonical fidelity report JSON here")
    q.add_argument("--min-syscall-coverage", type=float, default=1.0,
                   help="--strict floor on matched/truth syscalls")
    q.add_argument("--min-kind-accuracy", type=float, default=0.7,
                   help="--strict floor on argument-kind accuracy")
    q.add_argument("--min-flag-recall", type=float, default=0.2,
                   help="--strict floor on flag-domain recall")
    q.add_argument("--min-resource-precision", type=float, default=0.6,
                   help="--strict floor on resource-edge precision")
    q.add_argument("--min-resource-recall", type=float, default=0.4,
                   help="--strict floor on resource-edge recall")
    q.set_defaults(func=_cmd_specgen_diff)

    q = specgen_sub.add_parser(
        "campaign",
        help="seeded inferred-vs-ground-truth fuzzing evaluation",
    )
    _add_specgen_common(q)
    q.add_argument("--hours", type=float, default=0.5,
                   help="virtual hours per run")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--seed-corpus", type=int, default=15)
    q.add_argument("--min-ratio", type=float, default=0.7,
                   help="--strict floor on inferred/truth coverage ratio")
    q.add_argument("--json", action="store_true",
                   help="print machine-readable JSON instead of the table")
    q.add_argument("--out", default=None,
                   help="write the campaign report JSON here")
    q.set_defaults(func=_cmd_specgen_campaign)

    p = sub.add_parser("exec", help="execute a syz-format program")
    _add_kernel_args(p)
    p.add_argument("--prog", required=True, help="program file")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_exec)

    p = sub.add_parser("triage", help="triage + minimise a crashing program")
    _add_kernel_args(p)
    p.add_argument("--prog", required=True, help="program file")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_triage)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
