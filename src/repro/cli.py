"""Command-line interface.

Subcommands mirror the Snowplow workflow::

    python -m repro.cli build-kernel --version 6.8 --seed 1
    python -m repro.cli train --kernel 6.8 --out pmm.npz
    python -m repro.cli fuzz --kernel 6.8 --model pmm.npz --hours 2
    python -m repro.cli fuzz --kernel 6.9 --baseline --hours 2
    python -m repro.cli triage --kernel 6.8 --prog crash.syz
    python -m repro.cli exec --kernel 6.8 --prog test.syz
"""

from __future__ import annotations

import argparse
import sys

from repro.kernel import Executor, build_kernel
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.pmm.checkpoint import load_pmm, save_pmm
from repro.rng import derive_seed, split
from repro.snowplow import CampaignConfig, train_pmm
from repro.snowplow.campaign import (
    TrainedPMM,
    _build_snowplow_loop,
    _build_syzkaller_loop,
)
from repro.syzlang import ProgramGenerator, parse_program, serialize_program

__all__ = ["main"]


def _add_kernel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", default="6.8",
                        help="kernel version (6.8/6.9/6.10)")
    parser.add_argument("--kernel-seed", type=int, default=1)
    parser.add_argument("--size", default="default",
                        choices=("small", "default", "large"))


def _cmd_build_kernel(args) -> int:
    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    print(f"kernel {kernel.version}: {kernel.block_count} blocks, "
          f"{kernel.static_edge_count} static edges, "
          f"{len(kernel.table)} syscall variants, "
          f"{len(kernel.bugs)} planted bugs")
    for subsystem in kernel.table.subsystems():
        blocks = len(kernel.blocks_of_subsystem(subsystem))
        print(f"  {subsystem:<14} {blocks:>6} blocks")
    return 0


def _cmd_train(args) -> int:
    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    trained = train_pmm(
        kernel,
        seed=args.seed,
        corpus_size=args.corpus_size,
        dataset_config=DatasetConfig(
            mutations_per_test=args.mutations, seed=derive_seed(args.seed, "d")
        ),
        pmm_config=PMMConfig(dim=args.dim, seed=derive_seed(args.seed, "m")),
        train_config=TrainConfig(
            epochs=args.epochs, seed=derive_seed(args.seed, "t")
        ),
    )
    if trained.validation is not None:
        print(f"validation F1: {trained.validation.f1:.3f} "
              f"(threshold {trained.model.decision_threshold:.2f})")
    save_pmm(args.out, trained.model, trained.vocab, kernel.table)
    print(f"checkpoint written to {args.out}")
    return 0


def _cmd_fuzz(args) -> int:
    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    config = CampaignConfig(
        horizon=args.hours * 3600.0,
        runs=1,
        seed=args.seed,
        seed_corpus_size=args.seed_corpus,
        sample_interval=max(args.hours * 3600.0 / 16.0, 60.0),
    )
    run_seed = derive_seed(args.seed, "cli-fuzz", kernel.version)
    if args.baseline:
        loop = _build_syzkaller_loop(kernel, run_seed, config)
        label = "syzkaller"
    else:
        if not args.model:
            print("--model is required unless --baseline is given",
                  file=sys.stderr)
            return 2
        model, vocab, encoder = load_pmm(args.model, kernel.table)
        trained = TrainedPMM(
            model=model, encoder=encoder, vocab=vocab,
            dataset=None, validation=None,
        )
        loop = _build_snowplow_loop(kernel, trained, run_seed, config)
        label = "snowplow"
    seeds = ProgramGenerator(
        kernel.table, split(run_seed, "seed-corpus")
    ).seed_corpus(config.seed_corpus_size)
    loop.seed(seeds)
    stats = loop.run()
    print(f"[{label}] {args.hours:.1f} virtual hours on {kernel.version}: "
          f"{stats.final_edges} edges, {stats.final_blocks} blocks, "
          f"{stats.executions} executions, corpus {stats.corpus_size}")
    for observation in stats.observations[:: max(len(stats.observations) // 8, 1)]:
        print(f"  t={observation.time / 3600.0:5.2f}h "
              f"edges={observation.edges}")
    for crash in stats.crashes:
        tag = "NEW" if crash.is_new else "known"
        print(f"  crash [{tag}] {crash.signature}")
    return 0


def _cmd_exec(args) -> int:
    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    with open(args.prog) as handle:
        program = parse_program(handle.read(), kernel.table)
    result = Executor(kernel, seed=args.seed).run(program)
    print(f"{len(result.coverage.blocks)} blocks, "
          f"{len(result.coverage.edges)} edges covered")
    print(f"returns: {result.retvals}")
    if result.crash is not None:
        print(f"CRASH: {result.crash.description}")
        return 1
    return 0


def _cmd_triage(args) -> int:
    from repro.fuzzer.crash import CrashTriage
    from repro.kernel import symbolize

    kernel = build_kernel(args.kernel, seed=args.kernel_seed, size=args.size)
    with open(args.prog) as handle:
        program = parse_program(handle.read(), kernel.table)
    executor = Executor(kernel, seed=args.seed)
    result = executor.run(program)
    if result.crash is None:
        print("program does not crash the kernel")
        return 1
    triage = CrashTriage(executor, set())
    crash = triage.observe(program, result.crash)
    if crash is None:
        print(f"crash filtered by triage rules: {result.crash.description}")
        return 1
    print(f"signature: {crash.signature}")
    print(f"category:  {crash.category.value}")
    print(symbolize(kernel, result.crash).report())
    reproducer = triage.reproduce(crash)
    if reproducer is None:
        print("no reproducer (crash does not replay)")
        return 0
    print(f"minimised reproducer ({len(reproducer)} calls):")
    print(serialize_program(reproducer))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Snowplow reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build-kernel", help="build and describe a kernel")
    _add_kernel_args(p)
    p.set_defaults(func=_cmd_build_kernel)

    p = sub.add_parser("train", help="train PMM and write a checkpoint")
    _add_kernel_args(p)
    p.add_argument("--out", required=True, help="checkpoint path (.npz)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--corpus-size", type=int, default=120)
    p.add_argument("--mutations", type=int, default=120)
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--dim", type=int, default=32)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("fuzz", help="run a fuzzing campaign")
    _add_kernel_args(p)
    p.add_argument("--model", help="PMM checkpoint (Snowplow mode)")
    p.add_argument("--baseline", action="store_true",
                   help="run plain Syzkaller instead of Snowplow")
    p.add_argument("--hours", type=float, default=1.0,
                   help="virtual hours to fuzz")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--seed-corpus", type=int, default=100)
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("exec", help="execute a syz-format program")
    _add_kernel_args(p)
    p.add_argument("--prog", required=True, help="program file")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_exec)

    p = sub.add_parser("triage", help="triage + minimise a crashing program")
    _add_kernel_args(p)
    p.add_argument("--prog", required=True, help="program file")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_triage)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
