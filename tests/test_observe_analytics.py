"""Tests for the repro.observe analytics layer: virtual-time series,
the SLO/alert engine, live model-quality telemetry, the campaign health
report — and the PR's acceptance properties: checkpoint format v4
carries timelines byte-exactly through kill+resume, and an induced
coverage stall fires its alert at a deterministic virtual timestamp."""

import json
import os

import pytest

from repro.cli import main
from repro.kernel import build_kernel
from repro.observe import (
    Histogram,
    MetricsRegistry,
    ModelQualityTracker,
    Observer,
    SLOEngine,
    SeriesBuffer,
    StallRule,
    ThresholdRule,
    TimeSeriesStore,
    Tracer,
    alerts_json,
    BurnRateRule,
    campaign_report,
    chrome_trace,
    default_cluster_rules,
    default_fuzz_rules,
    default_rules,
    default_serving_rules,
    drift_summary,
    flatten_snapshot,
    format_model_quality,
    load_alerts,
    load_spans_jsonl,
    load_timeseries,
    model_quality_summary,
    parse_series_key,
    series_key,
    spans_jsonl,
    sparkline,
)
from repro.rng import split
from repro.snowplow import CampaignConfig, loop_state, restore_loop_state
from repro.snowplow.campaign import _build_syzkaller_loop
from repro.syzlang import ProgramGenerator

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


# ----- fixed fixture for the golden files -----


def _demo_analytics():
    """A scripted campaign's worth of series: coverage that plateaus at
    t=1800s (so the default stall rule fires at exactly t=5400s), a
    steady serving tier, and a handful of scored predictions."""
    registry = MetricsRegistry()
    store = TimeSeriesStore(interval=600.0, capacity=32, depth=2)
    edges = registry.gauge("fuzz.edges", worker=0)
    blocks = registry.gauge("fuzz.blocks", worker=0)
    executions = registry.counter("fuzz.executions", worker=0)
    delay = registry.histogram("serve.queue_delay")
    registry.counter("fuzz.heuristic_fallbacks", worker=0).inc(10)
    registry.counter("fuzz.inference_submitted", worker=0).inc(30)
    tracker = ModelQualityTracker(registry, kernel="6.8", worker=0)
    for _ in range(5):
        tracker.note_prediction(True)
    tracker.note_prediction(False)
    tracker.score_burst({1, 2, 3, 4}, {1, 2}, 5)
    tracker.score_burst({5, 6}, set(), 0)
    for tick in range(16):
        edges.set(min(40 * tick, 120))
        blocks.set(min(35 * tick, 105))
        executions.inc(25)
        delay.add(120.0)
        store.sample(tick * 600.0, registry)
    return registry, store


def _demo_alerts():
    registry, store = _demo_analytics()
    return SLOEngine(default_rules()).evaluate(store)


# ----- time-series store -----


class TestSeriesBuffer:
    def test_retains_everything_under_capacity(self):
        buffer = SeriesBuffer(capacity=8, depth=2)
        for tick in range(8):
            buffer.append(float(tick), float(tick * 2))
        assert buffer.points() == [
            (float(tick), float(tick * 2)) for tick in range(8)
        ]

    def test_overflow_coarsens_into_next_level(self):
        buffer = SeriesBuffer(capacity=4, depth=2)
        for tick in range(6):
            buffer.append(float(tick), float(tick))
        points = buffer.points()
        # The 5th append overflowed level 0: its oldest pair (t=0, t=1)
        # merged into one coarse point at the next level.
        assert len(points) == 5
        times = [time for time, _ in points]
        assert times == sorted(times)
        # "last" merge keeps the later point of the merged pair.
        assert points[0] == (1.0, 1.0)

    def test_max_merge_keeps_spikes(self):
        buffer = SeriesBuffer(capacity=2, depth=2, merge="max")
        for time, value in ((0.0, 9.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)):
            buffer.append(time, value)
        # The 9.0 spike at t=0 must survive coarsening (stamped onto
        # the merged pair's later time).
        assert 9.0 in [value for _, value in buffer.points()]

    def test_deepest_level_drops_oldest(self):
        buffer = SeriesBuffer(capacity=2, depth=1)
        for tick in range(10):
            buffer.append(float(tick), float(tick))
        assert len(buffer) <= 3

    def test_window_query(self):
        buffer = SeriesBuffer(capacity=16, depth=1)
        for tick in range(10):
            buffer.append(float(tick), float(tick))
        assert buffer.points(start=3.0, end=5.0) == [
            (3.0, 3.0), (4.0, 4.0), (5.0, 5.0)
        ]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            SeriesBuffer(capacity=1)
        with pytest.raises(ValueError):
            SeriesBuffer(merge="median")


class TestTimeSeriesStore:
    def test_cadence(self):
        store = TimeSeriesStore(interval=100.0)
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert store.maybe_sample(0.0, registry)
        assert not store.maybe_sample(50.0, registry)
        assert store.maybe_sample(100.0, registry)
        assert store.samples == 2

    def test_flattening_matches_diff_semantics(self):
        registry = MetricsRegistry()
        registry.counter("fuzz.executions", worker=1).inc(7)
        registry.gauge("fuzz.edges").set(3)
        registry.histogram("serve.queue_delay").add(4.0)
        flat = flatten_snapshot(registry.snapshot())
        assert flat["fuzz.executions{worker=1}"] == (7, "last")
        assert flat["fuzz.edges"] == (3, "last")
        assert flat["serve.queue_delay/p95"] == (4.0, "max")
        assert flat["serve.queue_delay/count"] == (1, "last")

    def test_diagnostic_series_never_sampled(self):
        registry = MetricsRegistry()
        registry.counter("fuzz.resumes", diagnostic=True).inc()
        registry.counter("fuzz.executions").inc()
        store = TimeSeriesStore()
        store.sample(0.0, registry)
        assert store.series() == ["fuzz.executions"]

    def test_pattern_query(self):
        _, store = _demo_analytics()[0], _demo_analytics()[1]
        assert store.series("fuzz.edges") == ["fuzz.edges{worker=0}"]
        assert store.latest("fuzz.edges{worker=0}") == (9000.0, 120.0)

    def test_state_roundtrip_is_byte_exact(self):
        _, store = _demo_analytics()
        clone = TimeSeriesStore(
            interval=store.interval, capacity=store.capacity,
            depth=store.depth,
        )
        clone.restore(json.loads(json.dumps(store.state_dict())))
        assert clone.to_json() == store.to_json()
        assert clone.last_sample_time == store.last_sample_time
        # And the restored store keeps sampling on the same cadence.
        assert not clone.due(store.last_sample_time + 1.0)

    def test_load_timeseries_roundtrip(self):
        _, store = _demo_analytics()
        loaded = load_timeseries(store.to_json())
        for key in store.series():
            assert loaded.points(key) == store.points(key)


# ----- SLO rules -----


class TestSLORules:
    def _store(self, values, key="fuzz.edges{worker=0}", step=100.0):
        store = TimeSeriesStore(interval=step, capacity=256, depth=1)
        buffer = SeriesBuffer(capacity=256, depth=1)
        for tick, value in enumerate(values):
            buffer.append(tick * step, float(value))
        store._series[key] = buffer
        return store

    def test_threshold_fires_once_per_episode(self):
        store = self._store([1, 5, 5, 1, 5, 1], key="serve.queue_delay/p95")
        rule = ThresholdRule("delay", "serve.queue_delay/p95", "<=", 3.0)
        alerts = rule.evaluate(store)
        assert [alert.time for alert in alerts] == [100.0, 400.0]
        assert alerts[0].value == 5.0

    def test_stall_fires_at_deterministic_time(self):
        # Progress stops at t=200; window 300 → alert at exactly t=500.
        store = self._store([0, 10, 20, 20, 20, 20, 20, 20])
        rule = StallRule("stall", "fuzz.edges", window=300.0)
        alerts = rule.evaluate(store)
        assert len(alerts) == 1
        assert alerts[0].time == 500.0
        # Re-arms on new progress, then fires again.
        store = self._store([0, 10, 20, 20, 20, 20, 30, 30, 30, 30, 30])
        alerts = rule.evaluate(store)
        assert [alert.time for alert in alerts] == [500.0, 900.0]

    def test_stall_quiet_while_progressing(self):
        store = self._store(list(range(10)))
        assert StallRule("s", "fuzz.edges", window=300.0).evaluate(store) == []

    def test_burn_rate_absolute(self):
        store = self._store(
            [0, 0, 1, 5, 5, 5], key="serve.breaker_trips"
        )
        rule = BurnRateRule(
            "trips", "serve.breaker_trips", window=200.0, budget=2.0
        )
        alerts = rule.evaluate(store)
        # Fires once at t=300 (growth 5 over the trailing window vs the
        # t=100 baseline of 0); stays in-violation at t=400 (growth 4)
        # without re-alerting, re-arms at t=500 (growth 0).
        assert [alert.time for alert in alerts] == [300.0]
        assert alerts[0].value == 5.0

    def test_burn_rate_ratio(self):
        store = self._store([0, 2, 4, 40], key="serve.failures")
        denominator = SeriesBuffer(capacity=256, depth=1)
        for tick, value in enumerate([10, 20, 30, 60]):
            denominator.append(tick * 100.0, float(value))
        store._series["serve.submitted"] = denominator
        rule = BurnRateRule(
            "loss", "serve.failures", window=200.0, budget=0.5,
            denominator="serve.submitted",
        )
        alerts = rule.evaluate(store)
        # At t=300: failures grew 40-2=38, submitted grew 60-20=40.
        assert [alert.time for alert in alerts] == [300.0]
        assert alerts[0].value == pytest.approx(38 / 40)

    def test_substring_match_covers_all_workers(self):
        store = self._store([5, 5, 5, 5, 5, 5, 5])
        store._series["fuzz.edges{worker=1}"] = (
            store._series["fuzz.edges{worker=0}"]
        )
        rule = StallRule("stall", "fuzz.edges", window=300.0)
        assert {alert.series for alert in rule.evaluate(store)} == {
            "fuzz.edges{worker=0}", "fuzz.edges{worker=1}"
        }

    def test_default_packs_shape(self):
        for pack in (default_fuzz_rules(), default_serving_rules(),
                     default_cluster_rules()):
            assert pack
        names = [rule.name for rule in default_rules()]
        assert len(names) == len(set(names))
        assert "fuzz.coverage_stall" in names
        assert "serve.queue_delay_p95" in names

    def test_engine_sorts_and_annotates(self):
        registry, store = _demo_analytics()
        engine = SLOEngine(default_rules())
        alerts = engine.evaluate(store)
        assert alerts == sorted(alerts)
        tracer = Tracer()
        assert engine.annotate(tracer, store) == alerts
        instants = [
            event for event in tracer.events()
            if getattr(event, "cat", None) == "alert"
        ]
        assert len(instants) == len(alerts)
        assert instants[0].track == "alerts"

    def test_alerts_json_roundtrip(self):
        alerts = _demo_alerts()
        assert alerts
        assert load_alerts(alerts_json(alerts)) == sorted(alerts)


# ----- model quality -----


class TestModelQuality:
    def test_score_burst_math(self):
        registry = MetricsRegistry()
        tracker = ModelQualityTracker(registry, kernel="6.8")
        # 4 predicted, 2 hit, 5 blocks gained: precision 0.5, recall 0.4.
        tracker.score_burst({1, 2, 3, 4}, {1, 2}, 5)
        summary = model_quality_summary(registry.snapshot())["6.8"]
        assert summary["precision"] == pytest.approx(0.5)
        assert summary["recall"] == pytest.approx(2 / 5)
        assert summary["target_hit_rate"] == pytest.approx(0.5)

    def test_unproductive_burst_scores_zero(self):
        registry = MetricsRegistry()
        tracker = ModelQualityTracker(registry, kernel="6.9")
        tracker.score_burst({7, 8}, set(), 0)
        summary = model_quality_summary(registry.snapshot())["6.9"]
        assert summary["precision"] == 0.0
        assert summary["f1"] == 0.0

    def test_acceptance_rate(self):
        registry = MetricsRegistry()
        tracker = ModelQualityTracker(registry, kernel="6.8")
        for accepted in (True, True, False, True):
            tracker.note_prediction(accepted)
        summary = model_quality_summary(registry.snapshot())["6.8"]
        assert summary["acceptance_rate"] == pytest.approx(0.75)

    def test_workers_aggregate_within_release(self):
        registry = MetricsRegistry()
        for worker in (0, 1):
            tracker = ModelQualityTracker(
                registry, kernel="6.8", worker=worker
            )
            tracker.score_burst({1, 2}, {1}, 2)
        summary = model_quality_summary(registry.snapshot())
        assert list(summary) == ["6.8"]
        assert summary["6.8"]["bursts_scored"] == 2

    def test_drift_is_relative_to_train_release(self):
        summaries = {
            "6.8": {"precision": 0.6, "recall": 0.5, "f1": 0.55,
                    "jaccard": 0.4, "acceptance_rate": 0.9},
            "6.10": {"precision": 0.4, "recall": 0.45, "f1": 0.42,
                     "jaccard": 0.3, "acceptance_rate": 0.8},
        }
        drift = drift_summary(summaries)
        assert list(drift) == ["6.10"]
        assert drift["6.10"]["precision"] == pytest.approx(-0.2)
        assert drift_summary({}) == {}

    def test_format_handles_untracked_runs(self):
        assert "no mq.* series" in format_model_quality({})

    def test_fallback_share_reads_fuzz_counters(self):
        registry, _ = _demo_analytics()
        summary = model_quality_summary(registry.snapshot())["6.8"]
        assert summary["fallback_share"] == pytest.approx(10 / 40)


class TestParseSeriesKey:
    def test_roundtrip(self):
        key = series_key("fuzz.executions", {"worker": 3, "kernel": "6.9"})
        name, labels = parse_series_key(key)
        assert name == "fuzz.executions"
        assert labels == {"kernel": "6.9", "worker": "3"}

    def test_plain_and_derived_keys(self):
        assert parse_series_key("fuzz.edges") == ("fuzz.edges", {})
        name, labels = parse_series_key("serve.queue_delay{worker=1}/p95")
        assert name == "serve.queue_delay/p95"
        assert labels == {"worker": "1"}


# ----- histogram percentile edge cases (regression tests) -----


class TestHistogramEdgeCases:
    def test_empty(self):
        histogram = Histogram("h", {})
        assert histogram.p50 == histogram.p95 == histogram.p99 == 0.0
        assert histogram.mean == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p95"] == 0.0

    @pytest.mark.parametrize("value", [
        0.0, 1.0, 2.0, 0.1, 1e-300, 5e-324, 1e300, 37.5, 1024.0,
    ])
    def test_single_sample_quantiles_are_the_sample(self, value):
        histogram = Histogram("h", {})
        histogram.add(value)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert histogram.quantile(q) == value
        assert histogram.mean == value

    def test_all_equal_stream(self):
        histogram = Histogram("h", {})
        for _ in range(100):
            histogram.add(37.5)
        assert histogram.p50 == histogram.p99 == 37.5

    def test_zero_heavy_stream(self):
        histogram = Histogram("h", {})
        for _ in range(99):
            histogram.add(0.0)
        histogram.add(8.0)
        # Rank convention: the 99th of 100 samples is still a zero, so
        # p99 stays 0.0; only the max quantile reaches the outlier.
        assert histogram.p50 == 0.0
        assert histogram.p99 == 0.0
        assert histogram.quantile(1.0) == 8.0

    def test_two_distinct_samples_stay_clamped(self):
        histogram = Histogram("h", {})
        histogram.add(3.0)
        histogram.add(5.0)
        for q in (0.01, 0.5, 0.99):
            assert 3.0 <= histogram.quantile(q) <= 5.0


# ----- exporter round-trip (satellite) -----


class TestExporterRoundTrip:
    def test_spans_jsonl_to_chrome_trace(self):
        tracer = Tracer()
        # Nested spans (containment) plus instants on two tracks.
        tracer.record("worker0", "iteration", 0.0, 100.0, cat="iteration")
        tracer.record("worker0", "exec", 10.0, 60.0, cat="exec")
        tracer.record("worker0", "triage", 60.0, 90.0, cat="triage")
        tracer.instant("worker0", "crash", 90.0, cat="crash", kind="KASAN")
        tracer.record("serve", "inference", 5.0, 45.0, cat="inference")
        tracer.instant("alerts", "fuzz.coverage_stall", 70.0, cat="alert")
        text = spans_jsonl(tracer)
        rebuilt = load_spans_jsonl(text)
        # Byte-exact through the round trip, for both exporters.
        assert spans_jsonl(rebuilt) == text
        assert chrome_trace(rebuilt) == chrome_trace(tracer)
        doc = json.loads(chrome_trace(rebuilt))
        phases = [event["ph"] for event in doc["traceEvents"]]
        assert phases.count("i") == 2
        assert phases.count("X") == 4


# ----- golden files -----


class TestGoldenAnalytics:
    def test_alerts_json_matches_golden(self):
        rendered = alerts_json(_demo_alerts())
        with open(os.path.join(GOLDEN_DIR, "observe_alerts.json")) as handle:
            assert rendered + "\n" == handle.read()

    def test_report_matches_golden(self):
        registry, store = _demo_analytics()
        rules = default_rules()
        alerts = SLOEngine(rules).evaluate(store)
        rendered = campaign_report(
            registry.snapshot(), store=store, alerts=alerts, rules=rules,
        )
        with open(os.path.join(GOLDEN_DIR, "observe_report.txt")) as handle:
            assert rendered == handle.read()


class TestSparkline:
    def test_deterministic_and_bounded(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "---"
        line = sparkline([float(v) for v in range(100)], width=24)
        assert len(line) == 24
        assert line[0] == " " and line[-1] == "@"


# ----- CLI -----


class TestReportCLI:
    def _export_demo(self, directory):
        registry, store = _demo_analytics()
        observer = Observer(
            registry=registry, timeseries=store,
            slo=SLOEngine(default_rules()),
        )
        observer.export(directory)
        return directory

    def test_observe_report_writes_alerts_and_prints(self, tmp_path, capsys):
        directory = self._export_demo(tmp_path / "obs")
        assert main(["observe", "report", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "campaign health report" in out
        assert "fuzz.coverage_stall" in out
        assert "model quality" in out
        alerts = load_alerts((directory / "alerts.json").read_text())
        assert any(alert.rule == "fuzz.coverage_stall" for alert in alerts)

    def test_observe_report_out_file_matches_stdout(self, tmp_path, capsys):
        directory = self._export_demo(tmp_path / "obs")
        out_file = tmp_path / "report.txt"
        assert main([
            "observe", "report", str(directory), "--out", str(out_file)
        ]) == 0
        assert out_file.read_text() == capsys.readouterr().out

    def test_observe_check_slo(self, tmp_path, capsys):
        directory = self._export_demo(tmp_path / "obs")
        metrics = str(directory / "metrics.json")
        # The demo stall is a warn, not critical: plain check passes,
        # --strict turns any alert into a failure.
        assert main([
            "observe", "check", metrics,
            "--require", "fuzz.executions", "--slo", "default",
        ]) == 0
        assert "fuzz.coverage_stall" in capsys.readouterr().out
        assert main([
            "observe", "check", metrics, "--slo", "default", "--strict",
        ]) == 1


# ----- acceptance: stall alert on a real seeded campaign -----


def _stalling_campaign(horizon=15000.0):
    # A "tiny" kernel saturates within the horizon; "small" keeps
    # creeping for tens of thousands of virtual seconds.
    kernel = build_kernel("6.8", seed=1, size="tiny")
    config = CampaignConfig(
        horizon=horizon, runs=1, seed=23, seed_corpus_size=12,
        sample_interval=300.0,
    )
    observer = Observer(
        slo=SLOEngine(default_fuzz_rules(stall_window=1500.0))
    )
    loop = _build_syzkaller_loop(kernel, 5, config, observer=observer)
    seeds = ProgramGenerator(
        kernel.table, split(5, "seed-corpus")
    ).seed_corpus(config.seed_corpus_size)
    loop.seed(seeds)
    loop.run()
    return observer


class TestStallAcceptance:
    def test_induced_stall_fires_deterministically(self):
        """A tiny kernel fuzzed far past its plateau must trip the
        coverage-stall rule, at the same virtual timestamp every run."""
        first = _stalling_campaign()
        stalls = [
            alert for alert in first.evaluate_slo()
            if alert.rule == "fuzz.coverage_stall"
        ]
        assert stalls, "campaign never plateaued — stall rule untested"
        again = _stalling_campaign()
        assert [
            (alert.time, alert.series)
            for alert in again.evaluate_slo()
            if alert.rule == "fuzz.coverage_stall"
        ] == [(alert.time, alert.series) for alert in stalls]


# ----- acceptance: checkpoint format v7 carries the timeline -----


class TestCheckpointV7:
    def test_format_version_is_7(self, kernel):
        config = CampaignConfig(
            horizon=1200.0, runs=1, seed=3, seed_corpus_size=8,
            sample_interval=300.0,
        )
        loop = _build_syzkaller_loop(kernel, 9, config, observer=Observer())
        seeds = ProgramGenerator(
            kernel.table, split(9, "seed-corpus")
        ).seed_corpus(8)
        loop.seed(seeds)
        state = loop_state(loop)
        assert state["format_version"] == 7
        assert "timeseries" in state["observer"]

    def test_single_loop_resume_replays_identical_timeline(self, kernel):
        def build():
            config = CampaignConfig(
                horizon=2400.0, runs=1, seed=3, seed_corpus_size=8,
                sample_interval=300.0,
            )
            loop = _build_syzkaller_loop(
                kernel, 9, config, observer=Observer()
            )
            seeds = ProgramGenerator(
                kernel.table, split(9, "seed-corpus")
            ).seed_corpus(8)
            loop.seed(seeds)
            return loop

        whole = build()
        whole.run()
        whole.finalize()

        interrupted = build()
        interrupted.run_until(1200.0)
        state = json.loads(json.dumps(loop_state(interrupted)))
        resumed = build()
        restore_loop_state(resumed, state)
        resumed.run()
        resumed.finalize()
        assert (
            resumed.observer.timeseries.to_json()
            == whole.observer.timeseries.to_json()
        )
        assert resumed.observer.registry.to_json() == (
            whole.observer.registry.to_json()
        )
