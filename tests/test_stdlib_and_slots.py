"""Tests for the standard syscall table and slot identifiers."""

import pytest

from repro.errors import SpecError
from repro.syzlang import build_standard_table
from repro.syzlang.slots import SLOT_SPACE, slot_id, slot_token
from repro.syzlang.spec import SyscallSpec, SyscallTable
from repro.syzlang.types import IntType, ResourceKind, ResourceType


class TestStandardTable:
    def test_versions_grow_monotonically(self):
        sizes = [
            len(build_standard_table(version))
            for version in ("6.8", "6.9", "6.10")
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_unknown_version_rejected(self):
        with pytest.raises(SpecError):
            build_standard_table("5.15")

    def test_base_table_is_prefix(self):
        base = {spec.full_name for spec in build_standard_table("6.8")}
        later = {spec.full_name for spec in build_standard_table("6.10")}
        assert base <= later

    def test_key_variants_present(self):
        table = build_standard_table("6.8")
        for name in (
            "open", "read", "write", "mmap", "socket", "sendmsg$inet",
            "ioctl$SCSI_IOCTL_SEND_COMMAND", "io_uring_setup", "bpf$PROG_LOAD",
        ):
            assert name in table

    def test_producers_of_fd_hierarchy(self):
        table = build_standard_table("6.8")
        fd = ResourceKind("fd")
        producers = table.producers_of(fd)
        names = {spec.full_name for spec in producers}
        # Every fd-subtype producer satisfies a plain fd consumer.
        assert {"open", "socket", "epoll_create1"} <= names

    def test_consumes_walks_nested_types(self):
        table = build_standard_table("6.8")
        spec = table.lookup("ioctl$SCSI_IOCTL_SEND_COMMAND")
        assert [kind.name for kind in spec.consumes()] == ["scsi_fd"]

    def test_duplicate_spec_rejected(self):
        spec = SyscallSpec("foo", (("x", IntType()),))
        table = SyscallTable([spec])
        with pytest.raises(SpecError):
            table.add(spec)

    def test_lookup_unknown_rejected(self):
        table = build_standard_table("6.8")
        with pytest.raises(SpecError):
            table.lookup("nonexistent")

    def test_subsystems_cover_paper_bug_homes(self):
        table = build_standard_table("6.8")
        subsystems = set(table.subsystems())
        # Table 4's failure locations: drivers/ata(scsi), arch(io_uring
        # path), kernel(timer), mm, fs/ext4.
        assert {"scsi", "io_uring", "timer", "mm", "ext4"} <= subsystems

    def test_average_mutation_sites_realistic(self):
        """§5.1: tests average >60 argument nodes; at our scale the
        flattened mutable-site count should be well into the tens."""
        from repro.rng import make_rng
        from repro.syzlang import ProgramGenerator
        import numpy as np

        table = build_standard_table("6.8")
        generator = ProgramGenerator(table, make_rng(0))
        sites = [
            len(generator.random_program().mutation_sites())
            for _ in range(100)
        ]
        assert np.mean(sites) > 15


class TestSlots:
    def test_slot_in_range(self):
        for path in [(0,), (1, 0, 3), (2, 0, 2, 1)]:
            assert 0 <= slot_id("open", path) < SLOT_SPACE

    def test_deterministic(self):
        assert slot_id("read", (1,)) == slot_id("read", (1,))

    def test_distinct_paths_usually_distinct(self):
        ids = {slot_id("sendmsg$inet", (1, 0, i)) for i in range(7)}
        assert len(ids) == 7

    def test_syscall_name_matters(self):
        assert slot_id("read", (0,)) != slot_id("write", (0,))

    def test_token_format(self):
        token = slot_token("open", (1,))
        assert token.startswith("off_")
        assert len(token) == 8
        assert int(token[4:], 16) == slot_id("open", (1,))
