"""Hypothesis property tests for the interval+bitmask abstract domain.

The PR-5 domain (:class:`repro.analyze.reach.AbstractValue`) backs
every reachable/solvable verdict the impact pass emits, so its algebra
carries the soundness burden: ``meet`` must be the exact conjunction,
``join`` a sound over-approximation, and ``refine`` must never drop a
concrete value that actually takes the branch outcomes it was refined
with — including the widening case where a multi-bit mask negation is
deliberately kept unconstrained.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.reach import AbstractValue
from repro.kernel.conditions import CondOp

# Concrete values and interval endpoints stay well inside the domain's
# 64-bit bounds so arithmetic in refine() never saturates.
values = st.integers(min_value=-(1 << 20), max_value=1 << 20)
masks = st.integers(min_value=0, max_value=(1 << 12) - 1)
ops = st.sampled_from(list(CondOp))


@st.composite
def abstract_values(draw):
    """A random non-trivially-constrained AbstractValue."""
    lo = draw(values)
    hi = draw(values)
    if lo > hi:
        lo, hi = hi, lo
    must_set = draw(masks)
    must_clear = draw(masks) & ~must_set
    return AbstractValue(lo=lo, hi=hi, must_set=must_set,
                         must_clear=must_clear)


def _branch_taken(op: CondOp, operand: int, value: int) -> bool:
    """The concrete outcome of a branch on ``value`` — the ground truth
    refine() must stay sound against."""
    if op is CondOp.EQ:
        return value == operand
    if op is CondOp.NE:
        return value != operand
    if op is CondOp.LT:
        return value < operand
    if op is CondOp.GT:
        return value > operand
    if op is CondOp.MASK_SET:
        return (value & operand) == operand
    return (value & operand) == 0  # MASK_CLEAR


class TestMeetJoin:
    @given(abstract_values(), abstract_values(), values)
    def test_meet_is_exact_conjunction(self, a, b, v):
        meet = a.meet(b)
        assert meet.admits(v) == (a.admits(v) and b.admits(v))

    @given(abstract_values(), abstract_values(), values)
    def test_join_is_sound_union(self, a, b, v):
        if a.admits(v) or b.admits(v):
            assert a.join(b).admits(v)

    @given(abstract_values(), abstract_values())
    def test_meet_join_commute(self, a, b):
        assert a.meet(b) == b.meet(a)
        assert a.join(b) == b.join(a)

    @given(abstract_values())
    def test_meet_join_idempotent(self, a):
        assert a.meet(a) == a
        assert a.join(a) == a

    @given(abstract_values(), abstract_values(), abstract_values(), values)
    def test_meet_monotone(self, a, b, c, v):
        """a ⊑ b implies meet(a, c) ⊑ meet(b, c), stated pointwise:
        anything meet(a, c) admits, meet(b, c) admits whenever b admits
        everything a does at that point."""
        if a.meet(c).admits(v):
            assert a.admits(v) and c.admits(v)
            if b.admits(v):
                assert b.meet(c).admits(v)

    @given(abstract_values(), abstract_values(), values)
    def test_join_upper_bound(self, a, b, v):
        joined = a.join(b)
        if a.admits(v):
            assert joined.admits(v)
        if b.admits(v):
            assert joined.admits(v)


class TestRefineSoundness:
    @settings(max_examples=300)
    @given(
        values,
        st.lists(st.tuples(ops, masks), min_size=1, max_size=8),
    )
    def test_refine_chain_keeps_the_witness(self, value, chain):
        """Drive a random CondOp chain with branch outcomes derived
        from one concrete value: the refined abstraction must keep
        admitting that value at every step and never collapse to None
        — a None would be a false "unsatisfiable path" verdict for a
        path the value provably executes."""
        abstract = AbstractValue()
        for op, operand in chain:
            taken = _branch_taken(op, operand, value)
            refined = abstract.refine(op, operand, taken)
            assert refined is not None, (
                f"refine({op}, {operand}, {taken}) emptied an "
                f"abstraction that admits {value}"
            )
            assert refined.admits(value)
            assert not refined.is_empty()
            abstract = refined

    @settings(max_examples=200)
    @given(abstract_values(), ops, masks, values)
    def test_refine_never_gains_values(self, abstract, op, operand, v):
        """Refinement only narrows: a value the input rejects is still
        rejected after refining with either branch outcome."""
        if abstract.admits(v):
            return
        for taken in (True, False):
            refined = abstract.refine(op, operand, taken)
            if refined is not None:
                assert not refined.admits(v)

    @settings(max_examples=200)
    @given(
        values,
        st.integers(min_value=0, max_value=(1 << 12) - 1).filter(
            lambda m: bin(m).count("1") >= 2
        ),
    )
    def test_multibit_mask_negation_widens_soundly(self, value, mask):
        """The widening case: "not all mask bits set" on a multi-bit
        mask keeps the bit constraints unchanged rather than splitting
        the disjunction.  Sound = every concrete value that fails the
        mask is still admitted."""
        if (value & mask) == mask:
            return  # value takes the branch; negation doesn't apply
        abstract = AbstractValue()
        refined = abstract.refine(CondOp.MASK_SET, mask, False)
        assert refined is not None
        assert refined.admits(value)
        # and it widens: bit sets are untouched
        assert refined.must_set == abstract.must_set
        assert refined.must_clear == abstract.must_clear

    @settings(max_examples=200)
    @given(values, st.lists(st.tuples(ops, masks), min_size=1, max_size=6))
    def test_example_is_admitted(self, value, chain):
        """Whenever a sound chain leaves the abstraction non-empty,
        example() produces a concrete witness it admits."""
        abstract = AbstractValue()
        for op, operand in chain:
            refined = abstract.refine(
                op, operand, _branch_taken(op, operand, value)
            )
            assert refined is not None
            abstract = refined
        witness = abstract.example()
        assert abstract.admits(witness)
