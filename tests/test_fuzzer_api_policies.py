"""Policy-level tests on the Figure 1 functional API.

Checks that the controller decomposition supports the paper's framing:
swapping only the localizer changes outcomes, everything else equal.
"""

import numpy as np
import pytest

from repro.fuzzer.api import fuzz_corpus
from repro.fuzzer.mutations import ArgumentInstantiator, MutationType
from repro.kernel import Executor
from repro.kernel.conditions import ArgCondition
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator
from repro.syzlang.program import ArgPath


def make_policies(kernel, localizer_kind="random"):
    generator = ProgramGenerator(kernel.table, make_rng(40))
    instantiator_impl = ArgumentInstantiator(generator, make_rng(41))

    def choose_test(corpus, uncovered, covered, targets, rng):
        test = corpus[int(rng.integers(len(corpus)))]
        pending = [t for t in targets if t not in covered]
        target = pending[0] if pending and len(targets) < 100 else None
        return test, target

    def selector(test, target, rng):
        if rng.random() < 0.7:
            return MutationType.ARGUMENT_MUTATION
        return MutationType.ARGUMENT_MUTATION  # argument-only policy

    def random_localizer(test, target, m_type, rng):
        sites = test.mutation_sites()
        if not sites:
            return []
        return [sites[int(rng.integers(len(sites)))]]

    def oracle_localizer(test, target, m_type, rng):
        """White-box: read the guard condition off the kernel CFG."""
        if target is not None:
            condition = kernel.guarding_condition(target)
            if isinstance(condition, ArgCondition):
                for call_index, call in enumerate(test.calls):
                    if call.spec.full_name == condition.syscall:
                        path = ArgPath(call_index, condition.path_elements)
                        try:
                            test.get(path)
                        except Exception:
                            continue
                        return [path]
        return random_localizer(test, target, m_type, rng)

    def instantiator(program, target, m_type, paths, rng):
        for path in paths:
            instantiator_impl.instantiate(program, path)

    localizer = (
        oracle_localizer if localizer_kind == "oracle" else random_localizer
    )
    return generator, choose_test, selector, localizer, instantiator


class TestLocalizerSwap:
    def test_oracle_localizer_reaches_target_faster(self, kernel):
        """The paper's core framing at API level: with everything else
        fixed, a white-box localizer reaches a guarded target in fewer
        executions than random localization."""
        results = {}
        for kind in ("random", "oracle"):
            generator, choose, selector, localizer, inst = make_policies(
                kernel, kind
            )
            executor = Executor(kernel)
            seeds = generator.seed_corpus(6)
            # Pick an EQ-guarded uncovered frontier block of the seeds.
            covered = set()
            for program in seeds:
                covered |= executor.run(program).coverage.blocks
            target = None
            for block in sorted(kernel.frontier(covered)):
                condition = kernel.guarding_condition(block)
                if isinstance(condition, ArgCondition):
                    target = block
                    break
            if target is None:
                pytest.skip("no argument-guarded frontier")
            report = fuzz_corpus(
                seeds, choose, selector, localizer, inst,
                kernel, executor, make_rng(42), targets={target},
                max_executions=3000,
            )
            results[kind] = (
                report.executions
                if target in report.targets_reached
                else 10**9
            )
        assert results["oracle"] <= results["random"]

    def test_report_coverage_monotonicity(self, kernel):
        generator, choose, selector, localizer, inst = make_policies(kernel)
        executor = Executor(kernel)
        report_small = fuzz_corpus(
            generator.seed_corpus(4), choose, selector, localizer, inst,
            kernel, executor, make_rng(43), max_executions=50,
        )
        generator2, choose2, selector2, localizer2, inst2 = make_policies(
            kernel
        )
        report_large = fuzz_corpus(
            generator2.seed_corpus(4), choose2, selector2, localizer2, inst2,
            kernel, Executor(kernel), make_rng(43), max_executions=300,
        )
        assert len(report_large.covered) >= len(report_small.covered)
