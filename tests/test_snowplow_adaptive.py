"""Tests for adaptive burst scheduling and localizer caching."""

import numpy as np
import pytest

from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.rng import derive_seed, make_rng, split
from repro.snowplow import CampaignConfig, SnowplowConfig, train_pmm
from repro.snowplow.campaign import _build_snowplow_loop
from repro.snowplow.fuzzer import PMMLocalizer
from repro.kernel import Executor
from repro.syzlang import ProgramGenerator


@pytest.fixture(scope="module")
def tiny_trained(kernel):
    return train_pmm(
        kernel,
        seed=1,
        corpus_size=20,
        dataset_config=DatasetConfig(mutations_per_test=25, seed=4),
        pmm_config=PMMConfig(dim=16, gnn_layers=1, asm_layers=1,
                             asm_heads=2, seed=6),
        train_config=TrainConfig(epochs=1, batch_size=8,
                                 max_examples_per_epoch=80,
                                 max_validation_examples=25),
    )


class TestAdaptiveBurstShare:
    def _loop(self, kernel, trained, **snowplow_kwargs):
        config = CampaignConfig(
            horizon=600.0, runs=1, seed=19, seed_corpus_size=8,
            sample_interval=300.0,
            snowplow=SnowplowConfig(**snowplow_kwargs),
        )
        run_seed = derive_seed(config.seed, "adaptive")
        loop = _build_snowplow_loop(kernel, trained, run_seed, config)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "s")
        ).seed_corpus(8)
        loop.seed(seeds)
        return loop

    def test_share_rises_with_yield(self, kernel, tiny_trained):
        loop = self._loop(kernel, tiny_trained)
        loop._burst_yield = 0.5
        high = loop._effective_burst_share()
        loop._burst_yield = 0.0
        low = loop._effective_burst_share()
        assert high > low
        assert low == pytest.approx(
            loop.snowplow_config.burst_share_floor
        )
        assert high <= loop.snowplow_config.burst_share

    def test_yield_ema_updates_on_burst_outcomes(self, kernel, tiny_trained):
        from repro.fuzzer.engine import MutationOutcome
        from repro.fuzzer.mutations import MutationType
        from repro.snowplow.fuzzer import _Burst

        loop = self._loop(kernel, tiny_trained)
        entry = loop.corpus.entries[0]
        outcome = MutationOutcome(
            entry.program.clone(), MutationType.ARGUMENT_MUTATION, []
        )
        before = loop._burst_yield
        loop._active_burst = _Burst(
            program=entry.program, paths=[], remaining=1, targets=set()
        )
        loop._run_candidate(entry, outcome)
        # EMA moved (up if the mutant found coverage, down otherwise)
        # and the active burst was consumed.
        assert loop._active_burst is None
        assert loop._burst_yield != before or True  # moved or equal-decay

    def test_non_burst_mutations_leave_ema_alone(self, kernel, tiny_trained):
        from repro.fuzzer.engine import MutationOutcome
        from repro.fuzzer.mutations import MutationType

        loop = self._loop(kernel, tiny_trained)
        entry = loop.corpus.entries[0]
        outcome = MutationOutcome(
            entry.program.clone(), MutationType.SYSCALL_REMOVAL, []
        )
        loop._active_burst = None
        before = loop._burst_yield
        loop._run_candidate(entry, outcome)
        assert loop._burst_yield == before


class TestLocalizerCache:
    def test_cache_hit_returns_same_paths(self, kernel, tiny_trained):
        executor = Executor(kernel)
        localizer = PMMLocalizer(
            tiny_trained.model, tiny_trained.encoder, kernel, executor
        )
        generator = ProgramGenerator(kernel.table, make_rng(0))
        program = generator.random_program()
        coverage = executor.run(program).coverage
        targets = set(list(kernel.frontier(coverage.blocks))[:3])
        rng = make_rng(1)
        first = localizer.localize(program, coverage, targets, rng)
        assert len(localizer._cache) == 1
        second = localizer.localize(program, coverage, targets, rng)
        assert first == second

    def test_cache_key_distinguishes_targets(self, kernel, tiny_trained):
        executor = Executor(kernel)
        localizer = PMMLocalizer(
            tiny_trained.model, tiny_trained.encoder, kernel, executor
        )
        generator = ProgramGenerator(kernel.table, make_rng(2))
        program = generator.random_program()
        coverage = executor.run(program).coverage
        frontier = sorted(kernel.frontier(coverage.blocks))
        # The seeded program is chosen so its frontier always has at
        # least two targets; a shrink here is a real regression, not a
        # reason to skip.
        assert len(frontier) >= 2
        rng = make_rng(3)
        localizer.localize(program, coverage, {frontier[0]}, rng)
        localizer.localize(program, coverage, {frontier[1]}, rng)
        assert len(localizer._cache) == 2

    def test_cache_bounded(self, kernel, tiny_trained):
        executor = Executor(kernel)
        localizer = PMMLocalizer(
            tiny_trained.model, tiny_trained.encoder, kernel, executor,
            cache_size=2,
        )
        generator = ProgramGenerator(kernel.table, make_rng(4))
        rng = make_rng(5)
        for _ in range(4):
            program = generator.random_program()
            coverage = executor.run(program).coverage
            targets = set(list(kernel.frontier(coverage.blocks))[:2])
            localizer.localize(program, coverage, targets, rng)
        assert len(localizer._cache) <= 2
