"""Cross-module integration tests: the full pipeline at tiny scale."""

import numpy as np
import pytest

from repro.graphs import build_query_graph
from repro.kernel import Executor, build_kernel
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator, parse_program, serialize_program


class TestProgramToKernelToGraph:
    def test_roundtrip_program_executes_identically(self, kernel):
        """serialize → parse → execute gives identical coverage."""
        generator = ProgramGenerator(kernel.table, make_rng(500))
        executor = Executor(kernel)
        for seed in range(5):
            program = ProgramGenerator(
                kernel.table, make_rng(seed)
            ).random_program()
            original = executor.run(program)
            reparsed = parse_program(
                serialize_program(program), kernel.table
            )
            replayed = executor.run(reparsed)
            assert original.coverage.blocks == replayed.coverage.blocks
            assert original.retvals == replayed.retvals

    def test_graph_covers_execution(self, kernel):
        """Every executed block appears in the query graph, and every
        frontier block appears as an alternative node."""
        generator = ProgramGenerator(kernel.table, make_rng(501))
        executor = Executor(kernel)
        program = generator.random_program()
        coverage = executor.run(program).coverage
        graph = build_query_graph(program, coverage, kernel)
        block_nodes = {
            node.block_id for node in graph.nodes if node.block_id >= 0
        }
        assert coverage.blocks <= block_nodes
        assert kernel.frontier(coverage.blocks) <= block_nodes


class TestMutationFlipsConditions:
    def test_targeted_mutation_can_reach_frontier(self, kernel):
        """Fundamental reachability: for a sample of frontier blocks
        guarded by argument conditions, setting the guard argument to the
        compared operand covers the block."""
        from repro.kernel.conditions import ArgCondition, CondOp
        from repro.syzlang.program import ArgPath, IntValue

        generator = ProgramGenerator(kernel.table, make_rng(502))
        executor = Executor(kernel)
        reached = 0
        examined = 0
        for seed in range(30):
            program = ProgramGenerator(
                kernel.table, make_rng(1000 + seed)
            ).random_program()
            coverage = executor.run(program).coverage
            for target in sorted(kernel.frontier(coverage.blocks)):
                condition = kernel.guarding_condition(target)
                if not isinstance(condition, ArgCondition):
                    continue
                if condition.op is not CondOp.EQ:
                    continue
                for call_index, call in enumerate(program.calls):
                    if call.spec.full_name != condition.syscall:
                        continue
                    path = ArgPath(call_index, condition.path_elements)
                    try:
                        value = program.get(path)
                    except Exception:
                        continue
                    if not isinstance(value, IntValue):
                        continue
                    examined += 1
                    mutated = program.clone()
                    mutated.get(path).value = condition.operand
                    result = executor.run(mutated)
                    if target in result.coverage.blocks:
                        reached += 1
                    break
                if examined >= 25:
                    break
            if examined >= 25:
                break
        assert examined > 0
        # Most EQ-guarded frontier blocks must be reachable this way
        # (some are blocked by side effects of the changed value).
        assert reached / examined > 0.5


class TestCrossVersionGeneralization:
    def test_model_runs_on_newer_kernel(self, kernel, kernel_69):
        """A PMM trained against the 6.8 vocab/table must produce
        predictions for 6.9 programs (unknown tokens degrade to <unk>)."""
        from repro.graphs import AsmVocab, GraphEncoder
        from repro.pmm import PMM, PMMConfig

        vocab = AsmVocab.build(kernel)
        encoder = GraphEncoder(vocab, kernel.table)
        model = PMM(
            len(vocab), encoder.num_syscalls,
            PMMConfig(dim=16, gnn_layers=1, asm_layers=1, asm_heads=2),
        )
        generator = ProgramGenerator(kernel_69.table, make_rng(503))
        executor = Executor(kernel_69)
        program = generator.random_program()
        coverage = executor.run(program).coverage
        frontier = sorted(kernel_69.frontier(coverage.blocks))[:4]
        graph = build_query_graph(
            program, coverage, kernel_69, set(frontier)
        )
        encoded = encoder.encode(graph)
        paths = model.predict_paths(encoded)
        assert paths
        assert set(paths) <= set(program.mutation_sites())


class TestComparisonHints:
    def test_execution_exposes_operands(self, kernel):
        generator = ProgramGenerator(kernel.table, make_rng(504))
        executor = Executor(kernel)
        result = executor.run(generator.random_program())
        assert result.comparison_operands
        # Operands are plain ints, bounded by the condition set.
        assert all(isinstance(op, int) for op in result.comparison_operands)

    def test_hints_make_exact_guards_flippable(self, kernel):
        """With KCOV_CMP-style hints, an EQ-guarded branch flips within
        a realistic number of draws."""
        from repro.fuzzer.mutations import ArgumentInstantiator
        from repro.syzlang.types import IntType
        from repro.syzlang.program import IntValue

        generator = ProgramGenerator(kernel.table, make_rng(505))
        rng = make_rng(506)
        instantiator = ArgumentInstantiator(generator, rng)
        ty = IntType(bits=32, minimum=0, maximum=10_000)
        magic = 7777  # not an "interesting" value: only hints reach it
        hits = 0
        for _ in range(200):
            value = IntValue(ty, 0)
            value.value = instantiator._mutate_int(ty, 0, hints={magic})
            if value.value == magic:
                hits += 1
        assert hits > 20
