"""Tests for crash symbolization."""

import pytest

from repro.errors import ExecutionError
from repro.kernel import Executor
from repro.kernel.bugs import CrashReport
from repro.kernel.symbolize import symbolize
from repro.syzlang.stdlib import ATA_16


@pytest.fixture()
def ata_crash(kernel, executor):
    from tests.test_kernel_executor import TestAtaBug

    program = TestAtaBug()._ata_program(kernel)
    result = executor.run(program)
    assert result.crashed
    return result.crash


class TestSymbolize:
    def test_locates_handler_and_subsystem(self, kernel, ata_crash):
        info = symbolize(kernel, ata_crash)
        assert info.bug_id == "ata-oob"
        assert info.syscall == "ioctl$SCSI_IOCTL_SEND_COMMAND"
        assert info.subsystem == "scsi"

    def test_recovers_guard_chain(self, kernel, ata_crash):
        info = symbolize(kernel, ata_crash)
        operands = {guard[3] for guard in info.argument_guards}
        assert ATA_16 in operands
        assert 512 in operands
        assert info.depth >= 4

    def test_report_is_readable(self, kernel, ata_crash):
        text = symbolize(kernel, ata_crash).report()
        assert "ata-oob" in text
        assert "guard:" in text
        assert "scsi" in text

    def test_unknown_block_rejected(self, kernel, ata_crash):
        bogus = CrashReport(
            bug=ata_crash.bug, block_id=10**9,
            description=ata_crash.description,
        )
        with pytest.raises(ExecutionError):
            symbolize(kernel, bogus)

    def test_every_planted_bug_symbolizes(self, kernel, executor):
        """All planted bugs map back to their declared subsystem."""
        for bug in kernel.bugs:
            block_id = kernel.bug_blocks[bug.bug_id]
            report = CrashReport(
                bug=bug, block_id=block_id, description=bug.description()
            )
            info = symbolize(kernel, report)
            assert info.bug_id == bug.bug_id
            # The crash block lives in its host handler's subsystem
            # (e.g. the ext4_search_dir bug is planted inside open()).
            handler = kernel.table.lookup(info.syscall)
            assert info.subsystem == handler.subsystem
            assert info.depth >= bug.depth
