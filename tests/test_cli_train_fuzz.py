"""End-to-end CLI test: train a tiny checkpoint, then fuzz with it."""

from repro.cli import main


class TestCliTrainFuzz:
    def test_train_then_fuzz(self, tmp_path, capsys):
        checkpoint = tmp_path / "pmm.npz"
        code = main([
            "train", "--size", "small", "--out", str(checkpoint),
            "--corpus-size", "15", "--mutations", "20",
            "--epochs", "1", "--dim", "16",
        ])
        assert code == 0
        assert checkpoint.exists()
        out = capsys.readouterr().out
        assert "checkpoint written" in out

        code = main([
            "fuzz", "--size", "small", "--model", str(checkpoint),
            "--hours", "0.1", "--seed-corpus", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snowplow" in out
        assert "edges" in out

    def test_baseline_fuzz(self, capsys):
        code = main([
            "fuzz", "--size", "small", "--baseline",
            "--hours", "0.1", "--seed-corpus", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "syzkaller" in out

    def test_fuzz_requires_model_or_baseline(self, capsys):
        code = main(["fuzz", "--size", "small", "--hours", "0.1"])
        assert code == 2


class TestCliCluster:
    def test_fuzz_with_workers(self, capsys):
        code = main([
            "fuzz", "--size", "small", "--oracle",
            "--hours", "0.25", "--seed-corpus", "10",
            "--workers", "2", "--batch-size", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snowplow x2" in out
        assert "fleet edges" in out
        assert "worker 0" in out and "worker 1" in out
        assert "inference:" in out

    def test_fuzz_baseline_with_workers(self, capsys):
        code = main([
            "fuzz", "--size", "small", "--baseline",
            "--hours", "0.25", "--seed-corpus", "10", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "syzkaller x2" in out

    def test_fuzz_rejects_bad_workers(self, capsys):
        code = main([
            "fuzz", "--size", "small", "--baseline",
            "--hours", "0.1", "--workers", "0",
        ])
        assert code == 2

    def test_cluster_sweep(self, capsys):
        code = main([
            "cluster", "--size", "small", "--oracle",
            "--hours", "0.25", "--seed-corpus", "10",
            "--worker-counts", "1,2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scaling sweep" in out
        assert "per-worker breakdown (2 workers)" in out

    def test_cluster_rejects_bad_counts(self, capsys):
        assert main([
            "cluster", "--size", "small", "--oracle",
            "--worker-counts", "two",
        ]) == 2
        assert main([
            "cluster", "--size", "small", "--oracle",
            "--worker-counts", "0,2",
        ]) == 2

    def test_cluster_requires_model_or_stand_in(self, capsys):
        code = main([
            "cluster", "--size", "small", "--worker-counts", "1",
        ])
        assert code == 2
