"""End-to-end CLI test: train a tiny checkpoint, then fuzz with it."""

from repro.cli import main


class TestCliTrainFuzz:
    def test_train_then_fuzz(self, tmp_path, capsys):
        checkpoint = tmp_path / "pmm.npz"
        code = main([
            "train", "--size", "small", "--out", str(checkpoint),
            "--corpus-size", "15", "--mutations", "20",
            "--epochs", "1", "--dim", "16",
        ])
        assert code == 0
        assert checkpoint.exists()
        out = capsys.readouterr().out
        assert "checkpoint written" in out

        code = main([
            "fuzz", "--size", "small", "--model", str(checkpoint),
            "--hours", "0.1", "--seed-corpus", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snowplow" in out
        assert "edges" in out

    def test_baseline_fuzz(self, capsys):
        code = main([
            "fuzz", "--size", "small", "--baseline",
            "--hours", "0.1", "--seed-corpus", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "syzkaller" in out

    def test_fuzz_requires_model_or_baseline(self, capsys):
        code = main(["fuzz", "--size", "small", "--hours", "0.1"])
        assert code == 2
