"""End-to-end CLI test: train a tiny checkpoint, then fuzz with it."""

import json

from repro.cli import main


class TestCliTrainFuzz:
    def test_train_then_fuzz(self, tmp_path, capsys):
        checkpoint = tmp_path / "pmm.npz"
        code = main([
            "train", "--size", "small", "--out", str(checkpoint),
            "--corpus-size", "15", "--mutations", "20",
            "--epochs", "1", "--dim", "16",
        ])
        assert code == 0
        assert checkpoint.exists()
        out = capsys.readouterr().out
        assert "checkpoint written" in out

        code = main([
            "fuzz", "--size", "small", "--model", str(checkpoint),
            "--hours", "0.1", "--seed-corpus", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snowplow" in out
        assert "edges" in out

    def test_baseline_fuzz(self, capsys):
        code = main([
            "fuzz", "--size", "small", "--baseline",
            "--hours", "0.1", "--seed-corpus", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "syzkaller" in out

    def test_fuzz_requires_model_or_baseline(self, capsys):
        code = main(["fuzz", "--size", "small", "--hours", "0.1"])
        assert code == 2


class TestCliCluster:
    def test_fuzz_with_workers(self, capsys):
        code = main([
            "fuzz", "--size", "small", "--oracle",
            "--hours", "0.25", "--seed-corpus", "10",
            "--workers", "2", "--batch-size", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snowplow x2" in out
        assert "fleet edges" in out
        assert "worker 0" in out and "worker 1" in out
        assert "inference:" in out

    def test_fuzz_baseline_with_workers(self, capsys):
        code = main([
            "fuzz", "--size", "small", "--baseline",
            "--hours", "0.25", "--seed-corpus", "10", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "syzkaller x2" in out

    def test_fuzz_rejects_bad_workers(self, capsys):
        code = main([
            "fuzz", "--size", "small", "--baseline",
            "--hours", "0.1", "--workers", "0",
        ])
        assert code == 2

    def test_cluster_sweep(self, capsys):
        code = main([
            "cluster", "--size", "small", "--oracle",
            "--hours", "0.25", "--seed-corpus", "10",
            "--worker-counts", "1,2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scaling sweep" in out
        assert "per-worker breakdown (2 workers)" in out

    def test_cluster_rejects_bad_counts(self, capsys):
        assert main([
            "cluster", "--size", "small", "--oracle",
            "--worker-counts", "two",
        ]) == 2
        assert main([
            "cluster", "--size", "small", "--oracle",
            "--worker-counts", "0,2",
        ]) == 2

    def test_cluster_requires_model_or_stand_in(self, capsys):
        code = main([
            "cluster", "--size", "small", "--worker-counts", "1",
        ])
        assert code == 2


class TestCliObserve:
    def _observed_run(self, tmp_path, capsys):
        directory = tmp_path / "telemetry"
        code = main([
            "fuzz", "--size", "small", "--oracle",
            "--hours", "0.1", "--seed-corpus", "10",
            "--observe-dir", str(directory),
        ])
        assert code == 0
        assert "telemetry:" in capsys.readouterr().out
        return directory

    def test_fuzz_observe_dir_exports_artifacts(self, tmp_path, capsys):
        directory = self._observed_run(tmp_path, capsys)
        for name in ("trace.json", "spans.jsonl", "metrics.json",
                     "flame.txt", "profile.txt"):
            assert (directory / name).exists()
        doc = json.loads((directory / "trace.json").read_text())
        assert doc["traceEvents"]

    def test_observe_render(self, tmp_path, capsys):
        directory = self._observed_run(tmp_path, capsys)
        chrome = tmp_path / "rendered.json"
        code = main([
            "observe", "render", str(directory / "spans.jsonl"),
            "--chrome", str(chrome),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "flame summary" in out and "perfetto" in out
        # The rendered trace equals the directly exported one.
        assert chrome.read_text() == (directory / "trace.json").read_text()

    def test_observe_diff_and_regression_exit_code(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(
            {"counters": {"fuzz.executions": 100}, "gauges": {},
             "histograms": {}}
        ))
        new.write_text(json.dumps(
            {"counters": {"fuzz.executions": 40}, "gauges": {},
             "histograms": {}}
        ))
        assert main(["observe", "diff", str(old), str(old)]) == 0
        assert "no metric changes" in capsys.readouterr().out
        assert main(["observe", "diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "regression(s)" in out and "lower-is-worse" in out
        # A generous threshold silences the same delta.
        assert main([
            "observe", "diff", str(old), str(new), "--threshold", "90",
        ]) == 0

    def test_observe_check(self, tmp_path, capsys):
        directory = self._observed_run(tmp_path, capsys)
        metrics = str(directory / "metrics.json")
        assert main([
            "observe", "check", metrics,
            "--require", "fuzz.executions",
            "--require", "serve.queue_delay",
        ]) == 0
        assert "expected series present" in capsys.readouterr().out
        assert main([
            "observe", "check", metrics, "--require", "no.such.series",
        ]) == 1
        assert "missing expected series" in capsys.readouterr().err
