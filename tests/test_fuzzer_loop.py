"""Tests for corpus, fuzz loop, and crash triage."""

import pytest

from repro.errors import CampaignError
from repro.fuzzer import (
    Corpus,
    CrashTriage,
    FuzzLoop,
    MutationEngine,
    SyzkallerLocalizer,
)
from repro.fuzzer.crash import categorize_description
from repro.fuzzer.engine import TypeSelector
from repro.kernel import CrashKind, Executor
from repro.kernel.coverage import Coverage
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator
from repro.vclock import CostModel, VirtualClock


def build_loop(kernel, seed=0, horizon=600.0):
    rng = make_rng(seed)
    generator = ProgramGenerator(kernel.table, rng)
    executor = Executor(kernel)
    engine = MutationEngine(
        TypeSelector(), SyzkallerLocalizer(k=1), generator, make_rng(seed + 1)
    )
    known = {bug.description() for bug in kernel.bugs if bug.known}
    triage = CrashTriage(executor, known)
    loop = FuzzLoop(
        kernel, engine, executor, triage,
        VirtualClock(horizon=horizon), CostModel(), make_rng(seed + 2),
        sample_interval=60.0,
    )
    return loop, generator


class TestCorpus:
    def test_choose_from_empty_raises(self):
        with pytest.raises(IndexError):
            Corpus().choose(make_rng(0))

    def test_add_clones(self, generator):
        corpus = Corpus()
        program = generator.random_program()
        entry = corpus.add(program, Coverage.from_traces([[1, 2]]), signal=3)
        program.calls.clear()
        assert len(entry.program) > 0

    def test_signal_weighting(self):
        corpus = Corpus()
        from repro.syzlang.program import Program

        corpus.add(Program(), Coverage(), signal=0)
        corpus.add(Program(), Coverage(), signal=100)
        rng = make_rng(1)
        picks = [corpus.choose(rng) for _ in range(300)]
        high = sum(1 for entry in picks if entry.signal == 100)
        assert high > 200

    def test_picked_counter_increments(self):
        corpus = Corpus()
        from repro.syzlang.program import Program

        corpus.add(Program(), Coverage(), signal=1)
        rng = make_rng(2)
        for _ in range(5):
            corpus.choose(rng)
        assert corpus.entries[0].picked == 5


class TestFuzzLoop:
    def test_run_without_seed_raises(self, kernel):
        loop, _ = build_loop(kernel)
        with pytest.raises(CampaignError):
            loop.run()

    def test_seed_empty_raises(self, kernel):
        loop, _ = build_loop(kernel)
        with pytest.raises(CampaignError):
            loop.seed([])

    def test_coverage_monotone(self, kernel):
        loop, generator = build_loop(kernel, horizon=900.0)
        loop.seed(generator.seed_corpus(10))
        stats = loop.run()
        edges = [obs.edges for obs in stats.observations]
        assert edges == sorted(edges)
        assert stats.final_edges >= edges[0]

    def test_respects_horizon(self, kernel):
        loop, generator = build_loop(kernel, horizon=300.0)
        loop.seed(generator.seed_corpus(5))
        loop.run()
        # Clock may overshoot by at most one iteration's costs.
        assert loop.clock.now < 300.0 + 50.0

    def test_mutation_counters(self, kernel):
        loop, generator = build_loop(kernel, horizon=600.0)
        loop.seed(generator.seed_corpus(5))
        stats = loop.run()
        assert sum(stats.mutations.values()) > 0
        assert stats.executions > 0

    def test_corpus_grows_with_coverage(self, kernel):
        loop, generator = build_loop(kernel, horizon=1800.0)
        loop.seed(generator.seed_corpus(10))
        stats = loop.run()
        assert stats.corpus_size > 10

    def test_time_to_edges(self, kernel):
        loop, generator = build_loop(kernel, horizon=900.0)
        loop.seed(generator.seed_corpus(10))
        stats = loop.run()
        first = stats.observations[0]
        assert stats.time_to_edges(first.edges) == first.time
        assert stats.time_to_edges(10**9) is None


class TestCrashTriage:
    def test_categorize(self):
        cases = {
            "KASAN: slab-out-of-bounds Write in x": CrashKind.OOB,
            "BUG: kernel NULL pointer dereference in x": CrashKind.NULL_DEREF,
            "BUG: unable to handle page fault for address in x": CrashKind.PAGING_FAULT,
            "kernel BUG at fs/ext4/inode.c!": CrashKind.ASSERT,
            "general protection fault in x": CrashKind.GPF,
            "WARNING in ext4_iomap_begin": CrashKind.WARNING,
            "unregister_netdevice: waiting for lo": CrashKind.OTHER,
        }
        for description, expected in cases.items():
            assert categorize_description(description) is expected

    def test_filters_noisy_markers(self, kernel, executor, generator):
        from repro.kernel.bugs import Bug, CrashReport

        triage = CrashTriage(executor, set())
        bug = Bug("x", CrashKind.OTHER, "fs", "f", depth=1)
        program = generator.random_program()
        report = CrashReport(bug, 0, "INFO: task hung in x")
        assert triage.observe(program, report) is None
        report = CrashReport(bug, 0, "SYZFAIL: something")
        assert triage.observe(program, report) is None

    def test_dedup_by_signature(self, kernel, executor, generator):
        from repro.kernel.bugs import Bug, CrashReport

        triage = CrashTriage(executor, set())
        bug = Bug("x", CrashKind.GPF, "fs", "f", depth=1)
        program = generator.random_program()
        report = CrashReport(bug, 0, "general protection fault in f")
        assert triage.observe(program, report) is not None
        assert triage.observe(program, report) is None
        assert len(triage.crashes) == 1

    def test_known_vs_new(self, kernel, executor, generator):
        from repro.kernel.bugs import Bug, CrashReport

        known = {"general protection fault in old"}
        triage = CrashTriage(executor, known)
        bug = Bug("x", CrashKind.GPF, "fs", "old", depth=1)
        program = generator.random_program()
        old = triage.observe(
            program, CrashReport(bug, 0, "general protection fault in old")
        )
        new = triage.observe(
            program, CrashReport(bug, 0, "general protection fault in new")
        )
        assert not old.is_new
        assert new.is_new


class TestReproduction:
    def _ata_crash(self, kernel, executor):
        """Craft the ATA crash and triage it."""
        from tests.test_kernel_executor import TestAtaBug

        program = TestAtaBug()._ata_program(kernel)
        result = executor.run(program)
        assert result.crashed
        triage = CrashTriage(executor, set())
        return triage, triage.observe(program, result.crash)

    def test_deterministic_crash_reproduces(self, kernel, executor):
        triage, crash = self._ata_crash(kernel, executor)
        reproducer = triage.reproduce(crash)
        assert reproducer is not None
        assert crash.has_reproducer

    def test_minimizer_shrinks(self, kernel, executor, generator):
        from tests.test_kernel_executor import TestAtaBug

        program = TestAtaBug()._ata_program(kernel)
        # Pad with irrelevant calls; the minimizer must strip them.
        padded = generator.random_program(length=3)
        for call in program.calls:
            padded.calls.append(call.clone())
        # Fix the resource reference of the appended ioctl call.
        offset = len(padded.calls) - 2
        padded.calls[-1].args[0].producer = offset
        result = executor.run(padded)
        if not result.crashed:
            pytest.skip("padding perturbed the crash setup")
        triage = CrashTriage(executor, set())
        crash = triage.observe(padded, result.crash)
        reproducer = triage.reproduce(crash)
        assert reproducer is not None
        assert len(reproducer) <= 2

    def test_reproducer_still_crashes(self, kernel, executor):
        triage, crash = self._ata_crash(kernel, executor)
        reproducer = triage.reproduce(crash)
        result = executor.run(reproducer)
        assert result.crashed
        assert result.crash.bug.bug_id == crash.bug_id
