"""Tests for NN layers and optimizers."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import (
    Adam,
    Embedding,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    SGD,
    Sequential,
    Tensor,
    TransformerEncoderLayer,
)
from repro.nn.modules import Module
from repro.rng import make_rng


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 7, make_rng(0))
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self):
        layer = Linear(4, 2, make_rng(0), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_trains_to_fit_line(self):
        rng = make_rng(1)
        layer = Linear(1, 1, rng)
        optimizer = SGD(layer.parameters(), lr=0.1)
        x = rng.normal(size=(32, 1))
        y = 3.0 * x + 0.5
        for _ in range(300):
            optimizer.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2.0).mean()
            loss.backward()
            optimizer.step()
        assert layer.weight.data[0, 0] == pytest.approx(3.0, abs=0.05)
        assert layer.bias.data[0] == pytest.approx(0.5, abs=0.05)


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 5, make_rng(0))
        out = table(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 5)

    def test_out_of_range_rejected(self):
        table = Embedding(10, 5, make_rng(0))
        with pytest.raises(ModelError):
            table(np.array([10]))

    def test_gradient_reaches_rows(self):
        table = Embedding(6, 3, make_rng(0))
        out = table(np.array([2, 2, 4]))
        out.sum().backward()
        grad = table.table.grad
        assert np.allclose(grad[2], 2.0)
        assert np.allclose(grad[4], 1.0)
        assert np.allclose(grad[0], 0.0)


class TestLayerNorm:
    def test_normalises(self):
        norm = LayerNorm(8)
        x = Tensor(make_rng(0).normal(size=(4, 8)) * 5 + 3)
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)


class TestAttention:
    def test_output_shape(self):
        attention = MultiHeadSelfAttention(16, 4, make_rng(0))
        out = attention(Tensor(make_rng(1).normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_dim_head_mismatch_rejected(self):
        with pytest.raises(ModelError):
            MultiHeadSelfAttention(10, 3, make_rng(0))

    def test_padding_masked_out(self):
        """Changing a padded position must not change real outputs."""
        attention = MultiHeadSelfAttention(8, 2, make_rng(0))
        rng = make_rng(2)
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[1, 1, 0, 0]])
        out1 = attention(Tensor(x), mask).data[:, :2]
        x2 = x.copy()
        x2[0, 3] += 100.0
        out2 = attention(Tensor(x2), mask).data[:, :2]
        assert np.allclose(out1, out2)


class TestTransformerLayer:
    def test_forward_and_backward(self):
        layer = TransformerEncoderLayer(16, 4, 32, make_rng(0))
        x = Tensor(make_rng(1).normal(size=(2, 6, 16)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in layer.parameters())


class TestModule:
    def test_parameters_recursion(self):
        class Net(Module):
            def __init__(self):
                self.layers = [Linear(2, 2, make_rng(0)) for _ in range(2)]
                self.named = {"head": Linear(2, 1, make_rng(1))}

        net = Net()
        # 2 layers x (W, b) + head (W, b) = 6 parameter tensors.
        assert len(net.parameters()) == 6

    def test_parameters_deduplicated(self):
        class Tied(Module):
            def __init__(self):
                self.a = Linear(2, 2, make_rng(0))
                self.b = self.a

        assert len(Tied().parameters()) == 2

    def test_state_roundtrip(self):
        net = Sequential(Linear(3, 4, make_rng(0)), Linear(4, 2, make_rng(1)))
        arrays = [a.copy() for a in net.state_arrays()]
        for parameter in net.parameters():
            parameter.data += 1.0
        net.load_state_arrays(arrays)
        for parameter, array in zip(net.parameters(), arrays):
            assert np.allclose(parameter.data, array)

    def test_state_shape_mismatch_rejected(self):
        net = Linear(3, 4, make_rng(0))
        with pytest.raises(ModelError):
            net.load_state_arrays([np.zeros((2, 2)), np.zeros(4)])

    def test_state_count_mismatch_rejected(self):
        net = Linear(3, 4, make_rng(0))
        with pytest.raises(ModelError):
            net.load_state_arrays([np.zeros((3, 4))])


class TestOptimizers:
    def _quadratic_descent(self, optimizer_factory, steps=150):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        optimizer = optimizer_factory([x])
        for _ in range(steps):
            optimizer.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            optimizer.step()
        return np.abs(x.data).max()

    def test_sgd_converges(self):
        assert self._quadratic_descent(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert (
            self._quadratic_descent(lambda p: SGD(p, lr=0.02, momentum=0.9))
            < 1e-2
        )

    def test_adam_converges(self):
        assert self._quadratic_descent(lambda p: Adam(p, lr=0.3)) < 1e-2

    def test_adam_clips_gradients(self):
        x = Tensor(np.array([1e6]), requires_grad=True)
        optimizer = Adam([x], lr=0.1, clip_norm=1.0)
        (x * x).sum().backward()
        optimizer._clip_gradients()
        assert np.abs(x.grad).max() <= 1.0 + 1e-9

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], lr=-1.0)
