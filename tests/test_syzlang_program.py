"""Tests for programs, values, paths, and structural edits."""

import pytest

from repro.errors import ProgramError
from repro.syzlang import build_standard_table
from repro.syzlang.program import (
    ArgPath,
    BufferValue,
    Call,
    IntValue,
    Program,
    PtrValue,
    ResourceValue,
    StructValue,
    zero_value,
)
from repro.syzlang.types import IntType


@pytest.fixture(scope="module")
def table():
    return build_standard_table("6.8")


def make_call(table, name):
    spec = table.lookup(name)
    return Call(spec, [zero_value(ty) for _, ty in spec.args])


def make_program(table, *names):
    return Program([make_call(table, name) for name in names])


class TestZeroValue:
    def test_zero_values_validate(self, table):
        for spec in table:
            call = make_call(table, spec.full_name)
            call.validate()

    def test_zero_program_validates(self, table):
        program = make_program(table, "open", "read", "close")
        program.validate(table)


class TestWalk:
    def test_walk_yields_nested_paths(self, table):
        program = make_program(table, "sendmsg$inet")
        paths = [path for path, _ in program.walk()]
        # msghdr nesting: some path must be at least 4 elements deep
        # (arg -> ptr -> struct field -> ptr -> ...).
        assert max(len(p.elements) for p in paths) >= 4

    def test_mutation_sites_are_mutable_leaves(self, table):
        program = make_program(table, "open", "mmap")
        for path in program.mutation_sites():
            value = program.get(path)
            assert value.ty.is_mutable()
            assert not isinstance(value, (PtrValue, StructValue))

    def test_get_set_roundtrip(self, table):
        program = make_program(table, "mmap")
        path = program.mutation_sites()[0]
        old = program.get(path)
        assert isinstance(old, IntValue)
        program.set(path, IntValue(old.ty, 12345))
        assert program.get(path).value == 12345

    def test_get_bad_call_index(self, table):
        program = make_program(table, "open")
        with pytest.raises(ProgramError):
            program.get(ArgPath(5, (0,)))

    def test_get_bad_element(self, table):
        program = make_program(table, "open")
        with pytest.raises(ProgramError):
            program.get(ArgPath(0, (99,)))

    def test_clone_is_deep(self, table):
        program = make_program(table, "mmap")
        clone = program.clone()
        path = program.mutation_sites()[0]
        clone.set(path, IntValue(clone.get(path).ty, 777))
        assert program.get(path).value != 777


class TestResources:
    def test_forward_reference_rejected(self, table):
        program = make_program(table, "read", "open")
        read_call = program.calls[0]
        fd_value = read_call.args[0]
        assert isinstance(fd_value, ResourceValue)
        fd_value.producer = 1  # produced later -> invalid
        with pytest.raises(ProgramError):
            program.validate(table)

    def test_valid_reference(self, table):
        program = make_program(table, "open", "read")
        fd = program.calls[1].args[0]
        fd.producer = 0
        program.validate(table)

    def test_incompatible_producer_rejected(self, table):
        # timerfd fd used where a scsi_fd is required.
        program = make_program(
            table, "timerfd_create", "ioctl$SCSI_IOCTL_SEND_COMMAND"
        )
        fd = program.calls[1].args[0]
        fd.producer = 0
        with pytest.raises(ProgramError):
            program.validate(table)

    def test_subtyped_producer_accepted(self, table):
        # read() wants a plain fd; a sock satisfies it.
        program = make_program(table, "socket", "read")
        fd = program.calls[1].args[0]
        fd.producer = 0
        program.validate(table)


class TestStructuralEdits:
    def test_insert_shifts_references(self, table):
        program = make_program(table, "open", "read")
        program.calls[1].args[0].producer = 0
        program.insert_call(0, make_call(table, "mkdir"))
        assert program.calls[2].args[0].producer == 1
        program.validate(table)

    def test_remove_nullifies_dangling(self, table):
        program = make_program(table, "open", "read")
        program.calls[1].args[0].producer = 0
        program.remove_call(0)
        assert program.calls[0].args[0].producer is None
        program.validate(table)

    def test_remove_shifts_later_references(self, table):
        program = make_program(table, "mkdir", "open", "read")
        program.calls[2].args[0].producer = 1
        program.remove_call(0)
        assert program.calls[1].args[0].producer == 0
        program.validate(table)

    def test_insert_bad_index(self, table):
        program = make_program(table, "open")
        with pytest.raises(ProgramError):
            program.insert_call(7, make_call(table, "open"))

    def test_remove_bad_index(self, table):
        program = make_program(table, "open")
        with pytest.raises(ProgramError):
            program.remove_call(3)


class TestLenFields:
    def test_resolve_len_fields(self, table):
        program = make_program(table, "write")
        # write(fd, buf, count=len(buf)); grow the buffer, re-resolve.
        buf_path = next(
            path for path, value in program.walk()
            if isinstance(value, BufferValue)
        )
        program.set(buf_path, BufferValue(program.get(buf_path).ty, b"12345"))
        program.resolve_len_fields()
        count = program.calls[0].args[2]
        assert isinstance(count, IntValue)
        assert count.value == 5

    def test_nested_len_fields(self, table):
        program = make_program(table, "sendmsg$inet")
        program.resolve_len_fields()
        program.validate(table)

    def test_arity_mismatch_rejected(self, table):
        spec = table.lookup("close")
        call = Call(spec, [])
        with pytest.raises(ProgramError):
            call.validate()
