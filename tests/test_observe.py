"""Tests for repro.observe: metrics, tracing, exporters, diffing,
profiling — and the property the subsystem exists for: observed
campaigns export byte-identically across same-seed runs, including a
run that was killed mid-flight and resumed from a checkpoint."""

import json
import math
import os

import pytest

from repro.cluster import ClusterConfig
from repro.observe import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounterMap,
    MetricsRegistry,
    Observer,
    Profiler,
    SLOEngine,
    Tracer,
    chrome_trace,
    default_rules,
    diff_snapshots,
    flag_regressions,
    flame_summary,
    format_diff,
    format_model_quality,
    load_spans_jsonl,
    model_quality_summary,
    series_key,
    spans_jsonl,
)
from repro.rng import derive_seed
from repro.snowplow import (
    CampaignConfig,
    build_cluster,
    cluster_state,
    restore_cluster_state,
    run_scaling_campaign,
)
from repro.vclock import VirtualClock

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

CANONICAL_FILES = (
    "trace.json", "spans.jsonl", "metrics.json", "flame.txt",
    "timeseries.json", "alerts.json",
)


def _demo_tracer() -> Tracer:
    """The fixed fixture the golden exporter files are generated from."""
    tracer = Tracer()
    tracer.record("worker0", "iteration", 0.0, 12.5, cat="iteration", n=1)
    tracer.record("worker0", "exec", 0.5, 10.0, cat="exec")
    tracer.instant("worker0", "crash", 10.0, cat="crash", kind="KASAN")
    tracer.record("serve", "inference", 2.0, 6.0, cat="inference", batch=4)
    tracer.instant("serve", "breaker_open", 6.0, cat="fault")
    tracer.record("worker0", "triage", 10.0, 12.5, cat="triage")
    return tracer


class TestSeriesKey:
    def test_plain_name(self):
        assert series_key("fuzz.executions") == "fuzz.executions"

    def test_labels_sorted(self):
        assert (
            series_key("fuzz.mutations", {"worker": 3, "type": "splice"})
            == "fuzz.mutations{type=splice,worker=3}"
        )


class TestHistogram:
    def test_bucket_of_power_of_two_boundaries(self):
        # Bucket i covers (2**(i-1), 2**i]; exact powers sit on the
        # upper bound of their bucket.
        assert Histogram.bucket_of(1.0) == 0
        assert Histogram.bucket_of(1.5) == 1
        assert Histogram.bucket_of(2.0) == 1
        assert Histogram.bucket_of(2.0001) == 2
        assert Histogram.bucket_of(0.25) == -2
        assert Histogram.bucket_of(10.0) == 4

    def test_quantiles_are_bucket_upper_bounds(self):
        hist = Histogram("h", {})
        for value in (1.0, 2.0, 3.0, 4.0, 10.0):
            hist.add(value)
        # Median target is the 3rd sample (3.0), which lives in the
        # (2, 4] bucket, so p50 reads that bucket's upper bound.
        assert hist.p50 == 4.0
        # p95/p99 clamp to the observed max.
        assert hist.p95 == 10.0
        assert hist.p99 == 10.0
        assert hist.mean == pytest.approx(4.0)
        assert hist.count == 5

    def test_zero_has_its_own_bucket(self):
        hist = Histogram("h", {})
        for value in (0.0, 0.0, 0.0, 8.0):
            hist.add(value)
        assert hist.zero == 3
        assert hist.p50 == 0.0
        assert hist.quantile(1.0) == 8.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Histogram("h", {}).add(-1.0)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("h", {}).quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("h", {}).p95 == 0.0

    def test_state_roundtrip_through_json(self):
        hist = Histogram("h", {})
        for value in (0.0, 0.5, 3.0, 100.0):
            hist.add(value)
        state = json.loads(json.dumps(hist.state_dict()))
        other = Histogram("h", {})
        other.restore(state)
        assert other.state_dict() == hist.state_dict()
        assert other.p95 == hist.p95
        assert other.mean == hist.mean

    def test_no_samples_stored(self):
        hist = Histogram("h", {})
        for i in range(10_000):
            hist.add(float(i % 37))
        # Memory stays O(buckets): a handful of power-of-two buckets,
        # not ten thousand samples.
        assert len(hist.buckets) < 10

    def test_bucketing_uses_exact_float_decomposition(self):
        # Every positive float lands in exactly one bucket, and the
        # bucket bound arithmetic is exact (ldexp/frexp, no logs).
        for value in (1e-9, 0.1, 1.0, 7.3, 2.0**31):
            index = Histogram.bucket_of(value)
            assert math.ldexp(1.0, index - 1) < value <= math.ldexp(1.0, index)


class TestMetricsRegistry:
    def test_instruments_are_cached(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g", worker=1) is registry.gauge("g", worker=1)

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="counter"):
            registry.gauge("x")

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("fuzz.executions", worker=1).inc(5)
        registry.gauge("serve.depth").set(2.5)
        registry.histogram("serve.queue_delay").add(3.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"fuzz.executions{worker=1}": 5}
        assert snap["gauges"] == {"serve.depth": 2.5}
        assert snap["histograms"]["serve.queue_delay"]["count"] == 1

    def test_diagnostic_series_excluded_from_canonical_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("fuzz.resumes", diagnostic=True).inc()
        registry.counter("fuzz.executions").inc()
        assert "fuzz.resumes" not in registry.snapshot()["counters"]
        assert "fuzz.resumes" in registry.snapshot(full=True)["counters"]
        # ... but checkpoints always carry them.
        keys = {entry["name"] for entry in registry.state_dict()["series"]}
        assert "fuzz.resumes" in keys

    def test_to_json_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        assert registry.to_json() == (
            '{"counters":{"a":2,"b":1},"gauges":{},"histograms":{}}'
        )

    def test_state_roundtrip_through_json(self):
        registry = MetricsRegistry()
        registry.counter("fuzz.executions", worker=3).inc(7)
        registry.gauge("charge", kind="exec").set(1.25)
        registry.histogram("serve.queue_delay").add(4.0)
        state = json.loads(json.dumps(registry.state_dict()))
        fresh = MetricsRegistry()
        fresh.restore(state)
        assert fresh.to_json() == registry.to_json()
        # Integer labels survive the JSON round trip as integers.
        assert "fuzz.executions{worker=3}" in fresh.snapshot()["counters"]

    def test_restore_leaves_unknown_local_series_alone(self):
        captured = MetricsRegistry()
        captured.counter("a").inc(4)
        local = MetricsRegistry()
        local.counter("a").inc(1)
        local.counter("zeroed_since_build").inc(9)
        local.restore(captured.state_dict())
        assert local.counter("a").value == 4
        assert local.counter("zeroed_since_build").value == 9

    def test_restore_is_in_place(self):
        # Stats views cache instrument objects; restore must mutate
        # them, not swap in replacements.
        registry = MetricsRegistry()
        counter = registry.counter("a")
        state = MetricsRegistry()
        state.counter("a").inc(11)
        registry.restore(state.state_dict())
        assert counter.value == 11
        assert registry.counter("a") is counter

    def test_remove(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.remove("a")
        assert len(registry) == 0


class TestLabeledCounterMap:
    def test_mapping_surface(self):
        registry = MetricsRegistry()
        mapping = LabeledCounterMap(registry, "fuzz.mutations", "type")
        mapping["splice"] = 2
        mapping["splice"] += 1
        assert mapping["splice"] == 3
        assert mapping.get("missing", 0) == 0
        assert len(mapping) == 1
        assert dict(mapping) == {"splice": 3}
        assert mapping == {"splice": 3}

    def test_backed_by_registry_series(self):
        registry = MetricsRegistry()
        mapping = LabeledCounterMap(
            registry, "fuzz.mutations", "type", {"worker": 2}
        )
        mapping["arg"] = 5
        snap = registry.snapshot()["counters"]
        assert snap == {"fuzz.mutations{type=arg,worker=2}": 5}
        del mapping["arg"]
        assert registry.snapshot()["counters"] == {}

    def test_replace_swaps_family(self):
        registry = MetricsRegistry()
        mapping = LabeledCounterMap(
            registry, "serve.batches", "size", key_type=int
        )
        mapping[1] = 3
        mapping.replace({"4": 2, "8": 1})
        assert dict(mapping) == {4: 2, 8: 1}
        assert "serve.batches{size=1}" not in registry.snapshot()["counters"]


class TestTracer:
    def test_record_and_instant_share_one_sequence(self):
        tracer = _demo_tracer()
        assert [event.seq for event in tracer.events()] == list(range(6))
        assert len(tracer) == 6
        assert tracer.tracks() == ["serve", "worker0"]

    def test_span_context_manager_uses_clock(self):
        tracer = Tracer()
        clock = VirtualClock()
        clock.advance(5.0, "setup")
        with tracer.span("worker0", "exec", clock, cat="exec"):
            clock.advance(2.5, "exec")
        (span,) = tracer.spans
        assert (span.start, span.end) == (5.0, 7.5)
        assert span.duration == 2.5

    def test_state_roundtrip_through_json(self):
        tracer = _demo_tracer()
        state = json.loads(json.dumps(tracer.state_dict()))
        fresh = Tracer()
        fresh.restore(state)
        assert spans_jsonl(fresh) == spans_jsonl(tracer)
        # The restored tracer continues the same sequence numbering.
        assert fresh.record("serve", "x", 0.0, 1.0).seq == 6


class TestExporters:
    def test_spans_jsonl_golden(self):
        with open(os.path.join(GOLDEN_DIR, "observe_spans.jsonl")) as handle:
            assert spans_jsonl(_demo_tracer()) == handle.read()

    def test_chrome_trace_golden(self):
        with open(os.path.join(GOLDEN_DIR, "observe_trace.json")) as handle:
            assert chrome_trace(_demo_tracer()) == handle.read()

    def test_chrome_trace_structure(self):
        doc = json.loads(chrome_trace(_demo_tracer()))
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metadata} == {"serve", "worker0"}
        complete = [e for e in events if e["ph"] == "X"]
        # Virtual seconds export as integral microseconds.
        exec_span = next(e for e in complete if e["name"] == "exec")
        assert exec_span["ts"] == 500_000 and exec_span["dur"] == 9_500_000
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        assert doc["otherData"]["clock"] == "virtual"

    def test_spans_jsonl_roundtrip(self):
        text = spans_jsonl(_demo_tracer())
        assert spans_jsonl(load_spans_jsonl(text)) == text

    def test_load_rejects_unknown_record(self):
        with pytest.raises(ValueError, match="unknown"):
            load_spans_jsonl('{"type":"mystery","seq":0}')

    def test_flame_summary_shares(self):
        text = flame_summary(_demo_tracer())
        assert "track worker0" in text and "track serve" in text
        # iteration covers the whole worker0 window -> 100% share.
        assert "iteration" in text and "100.0%" in text

    def test_empty_tracer_exports(self):
        tracer = Tracer()
        assert spans_jsonl(tracer) == ""
        assert "(no spans recorded)" in flame_summary(tracer)
        assert json.loads(chrome_trace(tracer))["traceEvents"] == []


class TestDiff:
    def _snap(self, **counters):
        return {"counters": counters, "gauges": {}, "histograms": {}}

    def test_diff_reports_changed_series_only(self):
        deltas = diff_snapshots(
            self._snap(a=1, b=2), self._snap(a=1, b=5, c=3)
        )
        assert [(d.key, d.old, d.new) for d in deltas] == [
            ("b", 2, 5), ("c", 0, 3),
        ]
        assert deltas[1].pct == float("inf")

    def test_histograms_compared_on_tail(self):
        old = {"histograms": {"serve.queue_delay": {"p95": 4.0, "count": 10}}}
        new = {"histograms": {"serve.queue_delay": {"p95": 8.0, "count": 10}}}
        (delta,) = diff_snapshots(old, new)
        assert delta.key == "serve.queue_delay/p95"
        assert delta.change == 4.0

    def test_flag_directions(self):
        old = self._snap(**{"fuzz.executions": 100, "serve.failures": 2})
        new = self._snap(**{"fuzz.executions": 50, "serve.failures": 10})
        regressions = flag_regressions(old, new)
        described = {r.delta.key: r.direction for r in regressions}
        assert described == {
            "fuzz.executions": "lower-is-worse",
            "serve.failures": "higher-is-worse",
        }

    def test_threshold_and_good_direction_not_flagged(self):
        old = self._snap(**{"fuzz.executions": 100, "serve.failures": 10})
        # Executions up and failures down are improvements; a 5% dip
        # stays under a 10% threshold.
        new = self._snap(**{"fuzz.executions": 95, "serve.failures": 2})
        assert flag_regressions(old, new, threshold_pct=10.0) == []
        assert flag_regressions(old, new, threshold_pct=4.0) != []

    def test_format_diff(self):
        assert format_diff([]) == "no metric changes\n"
        text = format_diff(diff_snapshots(self._snap(a=1), self._snap(a=3)))
        assert "a" in text and "+200.0%" in text


class TestProfiler:
    def test_section_accumulates_virtual_time(self):
        profiler = Profiler()
        clock = VirtualClock()
        with profiler.section("exec", clock):
            clock.advance(3.0, "exec")
        with profiler.section("exec", clock):
            clock.advance(1.0, "exec")
        calls, wall, virtual = profiler.sections()["exec"]
        assert calls == 2
        assert virtual == 4.0
        assert wall >= 0.0

    def test_add_virtual_and_publish(self):
        profiler = Profiler()
        profiler.add_virtual("gnn_forward", 12.0, calls=3)
        registry = MetricsRegistry()
        profiler.publish(registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges["profile.virtual{section=gnn_forward}"] == 12.0
        assert gauges["profile.calls{section=gnn_forward}"] == 3

    def test_report_mentions_wall_time_caveat(self):
        profiler = Profiler()
        assert "host-dependent" in profiler.report()
        profiler.add_virtual("x", 1.0)
        assert "x" in profiler.report()


class TestObserver:
    def test_export_writes_all_artifacts(self, tmp_path):
        observer = Observer(tracer=_demo_tracer())
        observer.registry.counter("fuzz.executions").inc(3)
        paths = observer.export(tmp_path / "obs")
        assert sorted(paths) == [
            "flame.txt", "metrics.json", "profile.txt",
            "spans.jsonl", "timeseries.json", "trace.json",
        ]
        for path in paths.values():
            assert path.exists()
        metrics = json.loads((tmp_path / "obs" / "metrics.json").read_text())
        assert metrics["counters"]["fuzz.executions"] == 3

    def test_state_roundtrip_excludes_profiler(self):
        observer = Observer(tracer=_demo_tracer())
        observer.registry.counter("a").inc()
        observer.profiler.add_virtual("hot", 9.0)
        state = json.loads(json.dumps(observer.state_dict()))
        assert "profiler" not in state
        fresh = Observer()
        fresh.restore(state)
        assert fresh.registry.to_json() == observer.registry.to_json()
        assert spans_jsonl(fresh.tracer) == spans_jsonl(observer.tracer)


# ----- observed campaigns: the determinism acceptance tests -----


def _campaign_config(seed=11, horizon=2400.0):
    return CampaignConfig(
        horizon=horizon, runs=1, seed=seed, seed_corpus_size=12,
        sample_interval=300.0,
    )


def _observed_cluster(kernel, workers=2, seed=11, baseline=False):
    config = _campaign_config(seed=seed)
    run_seed = derive_seed(config.seed, "observe-test", kernel.version)
    observer = Observer(slo=SLOEngine(default_rules()))
    cluster = build_cluster(
        kernel, None, run_seed, config,
        cluster_config=ClusterConfig(workers=workers, sync_interval=300.0),
        baseline=baseline, oracle=not baseline, observer=observer,
    )
    return cluster, observer


def _canonical_bytes(observer, directory):
    paths = observer.export(directory)
    return {
        name: paths[name].read_bytes() for name in CANONICAL_FILES
    }


class TestObservedCampaignDeterminism:
    def test_same_seed_runs_export_identically(self, kernel, tmp_path):
        exports = []
        for attempt in range(2):
            cluster, observer = _observed_cluster(kernel)
            cluster.run()
            exports.append(
                _canonical_bytes(observer, tmp_path / f"run{attempt}")
            )
        assert exports[0] == exports[1]
        # And the exports are non-trivial: spans on every worker track
        # plus the serving tier.
        doc = json.loads(exports[0]["trace.json"])
        names = {
            event["args"]["name"]
            for event in doc["traceEvents"] if event["ph"] == "M"
        }
        assert {"worker0", "worker1", "serve"} <= names

    def test_kill_resume_exports_identically(self, kernel, tmp_path):
        """An observed fleet killed mid-run and resumed from its
        checkpoint exports byte-identically to the uninterrupted run —
        telemetry follows durable state, not process lifetime."""
        whole, whole_observer = _observed_cluster(kernel, baseline=True)
        whole.run()
        uninterrupted = _canonical_bytes(whole_observer, tmp_path / "whole")

        interrupted, _ = _observed_cluster(kernel, baseline=True)
        interrupted.run_until(1200.0)
        state = json.loads(json.dumps(cluster_state(interrupted)))
        resumed, resumed_observer = _observed_cluster(kernel, baseline=True)
        restore_cluster_state(resumed, state)
        resumed.run()
        assert _canonical_bytes(
            resumed_observer, tmp_path / "resumed"
        ) == uninterrupted
        # The derived model-quality report (rendered off the snapshot)
        # is identical too, completing the v4 byte-identity story:
        # timelines + alerts are compared above as raw artifacts.
        assert format_model_quality(
            model_quality_summary(resumed_observer.registry.snapshot())
        ) == format_model_quality(
            model_quality_summary(whole_observer.registry.snapshot())
        )
        # The resume itself is visible, but only off the canonical path.
        full = resumed_observer.registry.snapshot(full=True)["counters"]
        assert full["fuzz.resumes{worker=0}"] == 1

    def test_scaling_campaign_emits_per_worker_series(self, kernel, tmp_path):
        # seed/horizon chosen so the 2-worker fleet actually completes
        # batched inference inside the budget (seed 31 at 1800s never
        # drains a batch before the horizon).
        result = run_scaling_campaign(
            kernel, None, _campaign_config(seed=11, horizon=2400.0),
            worker_counts=(1, 2),
            cluster_config=ClusterConfig(workers=2, sync_interval=300.0),
            oracle=True, observe=True,
        )
        point = result.points[-1]
        assert point.workers == 2
        paths = point.observer.export(tmp_path / "fleet2")
        snap = json.loads(paths["metrics.json"].read_text())
        counters = snap["counters"]
        for worker in (0, 1):
            assert counters[f"fuzz.executions{{worker={worker}}}"] > 0
            assert counters[f"fuzz.inference_submitted{{worker={worker}}}"] > 0
            assert counters[f"fuzz.hub_syncs{{worker={worker}}}"] > 0
        # The shared tier reports, too, and the trace carries the
        # campaign-level span for this fleet size.
        assert counters["serve.completed"] > 0
        assert "serve.queue_delay" in snap["histograms"]
        doc = json.loads(paths["trace.json"].read_text())
        campaign = [
            event for event in doc["traceEvents"]
            if event["ph"] == "X" and event["name"] == "fleet2"
        ]
        assert len(campaign) == 1

    def test_unobserved_runs_unchanged(self, kernel):
        """observe=None must not perturb the simulation: same final
        coverage with and without the observer riding along."""
        observed, _ = _observed_cluster(kernel, seed=17)
        config = _campaign_config(seed=17)
        run_seed = derive_seed(config.seed, "observe-test", kernel.version)
        plain = build_cluster(
            kernel, None, run_seed, config,
            cluster_config=ClusterConfig(workers=2, sync_interval=300.0),
            oracle=True,
        )
        assert observed.run().final_edges == plain.run().final_edges
