"""Tests for conditions, kernel state, and their interaction."""

import pytest

from repro.kernel.conditions import (
    ArgCondition,
    CondOp,
    StateCondition,
    imm_token,
    scalar_view,
)
from repro.kernel.state import KernelState
from repro.syzlang.program import (
    BufferValue,
    ConstValue,
    IntValue,
    PtrValue,
    ResourceValue,
)
from repro.syzlang.slots import slot_token
from repro.syzlang.types import (
    BufferType,
    ConstType,
    IntType,
    PtrType,
    ResourceKind,
    ResourceType,
)


class TestScalarView:
    def test_int(self):
        assert scalar_view(IntValue(IntType(), 42)) == 42

    def test_const(self):
        assert scalar_view(ConstValue(ConstType(7))) == 7

    def test_buffer_is_length(self):
        assert scalar_view(BufferValue(BufferType(), b"abcd")) == 4

    def test_null_pointer_is_zero(self):
        assert scalar_view(PtrValue(PtrType(IntType()), 0, None)) == 0

    def test_non_null_pointer_is_address(self):
        value = PtrValue(PtrType(IntType()), 0x1000, IntValue(IntType(), 0))
        assert scalar_view(value) == 0x1000

    def test_unresolved_resource_is_zero(self):
        fd = ResourceKind("fd")
        assert scalar_view(ResourceValue(ResourceType(fd), 0)) == 0

    def test_none_is_zero(self):
        assert scalar_view(None) == 0


class TestArgCondition:
    def _cond(self, op, operand):
        return ArgCondition("open", (1,), op, operand)

    @pytest.mark.parametrize(
        "op,operand,value,expected",
        [
            (CondOp.EQ, 5, 5, True),
            (CondOp.EQ, 5, 6, False),
            (CondOp.NE, 5, 6, True),
            (CondOp.LT, 10, 9, True),
            (CondOp.LT, 10, 10, False),
            (CondOp.GT, 10, 11, True),
            (CondOp.MASK_SET, 0b110, 0b111, True),
            (CondOp.MASK_SET, 0b110, 0b100, False),
            (CondOp.MASK_CLEAR, 0b110, 0b001, True),
            (CondOp.MASK_CLEAR, 0b110, 0b010, False),
        ],
    )
    def test_evaluate(self, op, operand, value, expected):
        condition = self._cond(op, operand)
        assert condition.evaluate({(1,): value}, KernelState()) is expected

    def test_missing_arg_defaults_to_zero(self):
        condition = self._cond(CondOp.EQ, 0)
        assert condition.evaluate({}, KernelState())

    def test_asm_contains_slot_token(self):
        condition = self._cond(CondOp.EQ, 4096)
        tokens = condition.asm_tokens()
        assert slot_token("open", (1,)) in tokens
        assert imm_token(4096) in tokens

    def test_mask_ops_use_test_insn(self):
        condition = self._cond(CondOp.MASK_SET, 2)
        assert "test" in condition.asm_tokens()


class TestImmToken:
    def test_bucketing_monotone(self):
        assert imm_token(0) == "imm_0"
        assert imm_token(1) == "imm_1"
        assert imm_token(3) == "imm_4"
        assert imm_token(4096) == "imm_1000"
        assert imm_token(10**9) == "imm_big"


class TestStateCondition:
    def test_reads_flags(self):
        state = KernelState()
        condition = StateCondition(key="fs:open:done")
        assert not condition.evaluate({}, state)
        state.flags["fs:open:done"] = 1
        assert condition.evaluate({}, state)

    def test_asm_mentions_state_key(self):
        condition = StateCondition(key="fs:open:done")
        assert "state_fs:open:done" in condition.asm_tokens()


class TestKernelState:
    def test_handle_lifecycle(self):
        state = KernelState()
        handle = state.open_handle("file_fd", flags=2, target=b"./f")
        assert state.handle_valid(handle)
        assert handle >= 3  # 0-2 reserved for stdio
        assert state.close_handle(handle)
        assert not state.handle_valid(handle)
        assert not state.close_handle(handle)

    def test_handles_unique(self):
        state = KernelState()
        a = state.open_handle("fd")
        b = state.open_handle("fd")
        assert a != b

    def test_touch_file_idempotent(self):
        state = KernelState()
        first = state.touch_file(b"./x", mode=0o600)
        second = state.touch_file(b"./x")
        assert first is second
        assert first.mode == 0o600
