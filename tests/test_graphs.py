"""Tests for query-graph construction and encoding (§3.2)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    AsmVocab,
    EdgeKind,
    GraphEncoder,
    Node,
    NodeKind,
    QueryGraph,
    build_query_graph,
)
from repro.graphs.encode import MAX_ASM_LEN, PAD, UNK
from repro.kernel import build_kernel
from repro.syzlang.slots import SLOT_SPACE, slot_id


@pytest.fixture()
def executed(kernel, generator, executor):
    program = generator.random_program()
    result = executor.run(program)
    return program, result.coverage


class TestBuildQueryGraph:
    def test_node_kinds_present(self, kernel, executed):
        program, coverage = executed
        targets = set(list(kernel.frontier(coverage.blocks))[:2])
        graph = build_query_graph(program, coverage, kernel, targets)
        graph.validate()
        kinds = {node.kind for node in graph.nodes}
        assert kinds == {
            NodeKind.SYSCALL, NodeKind.ARG, NodeKind.COVERED,
            NodeKind.ALTERNATIVE,
        }

    def test_syscall_count_matches_program(self, kernel, executed):
        program, coverage = executed
        graph = build_query_graph(program, coverage, kernel)
        assert len(graph.node_indices(NodeKind.SYSCALL)) == len(program)

    def test_arg_nodes_cover_all_values(self, kernel, executed):
        program, coverage = executed
        graph = build_query_graph(program, coverage, kernel)
        expected = sum(1 for _ in program.walk())
        assert len(graph.node_indices(NodeKind.ARG)) == expected

    def test_covered_nodes_match_coverage(self, kernel, executed):
        program, coverage = executed
        graph = build_query_graph(program, coverage, kernel)
        block_ids = {
            node.block_id for node in graph.nodes
            if node.kind is NodeKind.COVERED
        }
        assert block_ids == coverage.blocks

    def test_alternatives_are_frontier(self, kernel, executed):
        program, coverage = executed
        graph = build_query_graph(program, coverage, kernel)
        alt_ids = {
            node.block_id for node in graph.nodes
            if node.kind is NodeKind.ALTERNATIVE
        }
        assert alt_ids == kernel.frontier(coverage.blocks)

    def test_targets_marked(self, kernel, executed):
        program, coverage = executed
        frontier = sorted(kernel.frontier(coverage.blocks))
        targets = set(frontier[:3])
        graph = build_query_graph(program, coverage, kernel, targets)
        marked = {
            graph.nodes[index].block_id for index in graph.target_nodes()
        }
        assert marked == targets

    def test_every_edge_kind_present(self, kernel, executed):
        program, coverage = executed
        targets = set(list(kernel.frontier(coverage.blocks))[:1])
        graph = build_query_graph(program, coverage, kernel, targets)
        kinds = set(graph.edge_count_by_kind())
        assert kinds == set(EdgeKind)

    def test_context_switch_edges_per_call(self, kernel, executed):
        program, coverage = executed
        graph = build_query_graph(program, coverage, kernel)
        count = graph.edge_count_by_kind()[EdgeKind.CONTEXT_SWITCH]
        assert count == 2 * len(coverage.call_traces)

    def test_mutable_arg_nodes_match_sites(self, kernel, executed):
        program, coverage = executed
        graph = build_query_graph(program, coverage, kernel)
        mutable_paths = {
            graph.nodes[index].arg_path
            for index in graph.mutable_argument_nodes()
        }
        assert mutable_paths == set(program.mutation_sites())

    def test_mismatched_coverage_rejected(self, kernel, executed):
        from repro.kernel.coverage import Coverage

        program, _ = executed
        bogus = Coverage.from_traces([[1]] * (len(program) + 3))
        with pytest.raises(GraphError):
            build_query_graph(program, bogus, kernel)


class TestQueryGraphSchema:
    def test_bad_edge_rejected(self):
        graph = QueryGraph()
        graph.add_node(Node(kind=NodeKind.SYSCALL, syscall_name="x"))
        with pytest.raises(GraphError):
            graph.add_edge(0, 5, EdgeKind.CALL_ORDER)

    def test_target_on_non_alternative_rejected(self):
        graph = QueryGraph()
        graph.add_node(
            Node(kind=NodeKind.COVERED, block_id=1, target=True)
        )
        with pytest.raises(GraphError):
            graph.validate()

    def test_arg_without_path_rejected(self):
        from repro.syzlang.types import ArgKind

        graph = QueryGraph()
        graph.add_node(Node(kind=NodeKind.ARG, arg_kind=ArgKind.INT))
        with pytest.raises(GraphError):
            graph.validate()


class TestAsmVocab:
    def test_slot_tokens_always_present(self, kernel):
        vocab = AsmVocab.build(kernel)
        for slot in (0, 1, SLOT_SPACE - 1):
            token = f"off_{slot:04x}"
            assert vocab.id_of(token) != UNK

    def test_slot_tokens_at_fixed_offsets(self, kernel):
        """Slot s must live at vocab row 3 + s — the weight-tying
        contract of PMM._slot_vectors."""
        vocab = AsmVocab.build(kernel)
        assert vocab.id_of("off_0000") == 3
        assert vocab.id_of(f"off_{SLOT_SPACE - 1:04x}") == 3 + SLOT_SPACE - 1

    def test_unknown_token_maps_to_unk(self, kernel):
        vocab = AsmVocab.build(kernel)
        assert vocab.id_of("fn_totally_new_subsystem") == UNK

    def test_encode_pads(self, kernel):
        vocab = AsmVocab.build(kernel)
        ids = vocab.encode(("mov", "rax"))
        assert len(ids) == MAX_ASM_LEN
        assert ids[2] == PAD

    def test_cross_version_tokens_degrade_gracefully(self, kernel):
        """6.10-only assembly tokens encode as UNK under a 6.8 vocab,
        but slot tokens keep their ids (cross-version generalization)."""
        vocab68 = AsmVocab.build(kernel)
        v610 = build_kernel("6.10", seed=1, size="small")
        for block in v610.blocks.values():
            for token in block.asm:
                if token.startswith("off_"):
                    assert vocab68.id_of(token) != UNK


class TestGraphEncoder:
    def test_encoding_shapes(self, kernel, executed):
        program, coverage = executed
        vocab = AsmVocab.build(kernel)
        encoder = GraphEncoder(vocab, kernel.table)
        graph = build_query_graph(program, coverage, kernel)
        encoded = encoder.encode(graph)
        n = encoded.num_nodes
        assert encoded.node_kind.shape == (n,)
        assert encoded.asm_tokens.shape == (n, MAX_ASM_LEN)
        assert encoded.num_edges == 2 * len(graph.edges)  # reverse edges

    def test_slot_feature_matches_slot_id(self, kernel, executed):
        program, coverage = executed
        vocab = AsmVocab.build(kernel)
        encoder = GraphEncoder(vocab, kernel.table)
        graph = build_query_graph(program, coverage, kernel)
        encoded = encoder.encode(graph)
        for index, node in enumerate(graph.nodes):
            if node.kind is NodeKind.ARG:
                spec = program.calls[node.arg_path.call_index].spec
                expected = slot_id(spec.full_name, node.arg_path.elements)
                assert encoded.slot[index] == expected + 1

    def test_labels_encoded_on_arg_rows(self, kernel, executed):
        program, coverage = executed
        vocab = AsmVocab.build(kernel)
        encoder = GraphEncoder(vocab, kernel.table)
        graph = build_query_graph(program, coverage, kernel)
        sites = program.mutation_sites()
        labels = {sites[0]: True}
        encoded = encoder.encode(graph, labels=labels)
        assert encoded.labels is not None
        assert encoded.labels.sum() == 1.0

    def test_empty_graph_rejected(self, kernel):
        vocab = AsmVocab.build(kernel)
        encoder = GraphEncoder(vocab, kernel.table)
        with pytest.raises(GraphError):
            encoder.encode(QueryGraph())
