"""Tests for checkpointing, corpus distillation, the Fig. 1 API, and CLI."""

import numpy as np
import pytest

from repro.errors import CampaignError, ModelError
from repro.fuzzer.api import FuzzReport, fuzz_corpus
from repro.fuzzer.distill import distill_corpus
from repro.fuzzer.mutations import ArgumentInstantiator, MutationType
from repro.graphs import AsmVocab, GraphEncoder, build_query_graph
from repro.kernel import Executor, build_kernel
from repro.pmm import PMM, PMMConfig
from repro.pmm.checkpoint import load_pmm, save_pmm
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator, build_standard_table


class TestCheckpoint:
    @pytest.fixture()
    def artifacts(self, kernel, tmp_path):
        vocab = AsmVocab.build(kernel)
        encoder = GraphEncoder(vocab, kernel.table)
        model = PMM(
            len(vocab), encoder.num_syscalls,
            PMMConfig(dim=16, gnn_layers=1, asm_layers=1, asm_heads=2,
                      seed=3),
        )
        model.decision_threshold = 0.42
        path = tmp_path / "pmm.npz"
        save_pmm(path, model, vocab, kernel.table)
        return model, vocab, path

    def test_roundtrip_weights_and_threshold(self, kernel, artifacts):
        model, vocab, path = artifacts
        loaded, loaded_vocab, encoder = load_pmm(path, kernel.table)
        assert loaded.decision_threshold == pytest.approx(0.42)
        assert len(loaded_vocab) == len(vocab)
        for original, restored in zip(
            model.state_arrays(), loaded.state_arrays()
        ):
            assert np.allclose(original, restored)

    def test_roundtrip_predictions_identical(self, kernel, artifacts):
        model, vocab, path = artifacts
        loaded, _, encoder = load_pmm(path, kernel.table)
        generator = ProgramGenerator(kernel.table, make_rng(0))
        executor = Executor(kernel)
        program = generator.random_program()
        coverage = executor.run(program).coverage
        graph = build_query_graph(program, coverage, kernel)
        encoded = encoder.encode(graph)
        assert np.allclose(
            model.forward(encoded).data, loaded.forward(encoded).data
        )

    def test_load_on_newer_table_keeps_ids(self, kernel, artifacts):
        """Deploying a 6.8 checkpoint on a 6.10 table must preserve the
        training-time syscall-id assignment."""
        _, _, path = artifacts
        newer = build_standard_table("6.10")
        loaded, _, encoder = load_pmm(path, newer)
        base = GraphEncoder(AsmVocab.build(kernel), kernel.table)
        assert encoder.syscall_to_id == base.syscall_to_id

    def test_missing_syscalls_rejected(self, artifacts, tmp_path):
        _, _, path = artifacts
        from repro.syzlang.spec import SyscallTable, SyscallSpec
        from repro.syzlang.types import IntType

        tiny = SyscallTable([SyscallSpec("only", (("x", IntType()),))])
        with pytest.raises(ModelError):
            load_pmm(path, tiny)

    def test_missing_file_rejected(self, kernel, tmp_path):
        with pytest.raises(ModelError):
            load_pmm(tmp_path / "nope.npz", kernel.table)


class TestDistill:
    def test_distilled_preserves_total_coverage(self, kernel):
        generator = ProgramGenerator(kernel.table, make_rng(10))
        executor = Executor(kernel)
        corpus = generator.seed_corpus(40)
        distilled = distill_corpus(corpus, executor)
        union = set()
        for coverage in distilled.coverages:
            union |= coverage.edges
        assert len(union) == distilled.total_edges
        # Re-executing everything must not find coverage distillation lost.
        full = set()
        for program in corpus:
            result = executor.run(program)
            if not result.crashed:
                full |= result.coverage.edges
        assert union == full

    def test_distillation_reduces(self, kernel):
        generator = ProgramGenerator(kernel.table, make_rng(11))
        executor = Executor(kernel)
        corpus = generator.seed_corpus(60)
        distilled = distill_corpus(corpus, executor)
        assert len(distilled.programs) < len(corpus)
        assert distilled.reduction > 0

    def test_budget_respected(self, kernel):
        generator = ProgramGenerator(kernel.table, make_rng(12))
        executor = Executor(kernel)
        corpus = generator.seed_corpus(30)
        distilled = distill_corpus(corpus, executor, max_programs=5)
        assert len(distilled.programs) <= 5

    def test_greedy_keeps_best_first(self, kernel):
        generator = ProgramGenerator(kernel.table, make_rng(13))
        executor = Executor(kernel)
        corpus = generator.seed_corpus(20)
        one = distill_corpus(corpus, executor, max_programs=1)
        best = max(
            len(executor.run(p).coverage.edges)
            for p in corpus
            if not executor.run(p).crashed
        )
        assert one.total_edges == best


class TestFigure1Api:
    def _policies(self, kernel):
        generator = ProgramGenerator(kernel.table, make_rng(20))
        instantiator_impl = ArgumentInstantiator(generator, make_rng(21))

        def choose_test(corpus, uncovered, covered, targets, rng):
            return corpus[int(rng.integers(len(corpus)))], None

        def selector(test, target, rng):
            return MutationType.ARGUMENT_MUTATION

        def localizer(test, target, m_type, rng):
            sites = test.mutation_sites()
            return [sites[int(rng.integers(len(sites)))]] if sites else []

        def instantiator(program, target, m_type, paths, rng):
            for path in paths:
                instantiator_impl.instantiate(program, path)

        return generator, choose_test, selector, localizer, instantiator

    def test_fuzz_corpus_runs(self, kernel):
        generator, choose, selector, localizer, inst = self._policies(kernel)
        executor = Executor(kernel)
        report = fuzz_corpus(
            generator.seed_corpus(5), choose, selector, localizer, inst,
            kernel, executor, make_rng(22), max_executions=100,
        )
        assert isinstance(report, FuzzReport)
        assert report.executions == 100
        assert report.covered
        assert len(report.corpus) >= 5

    def test_directed_stops_on_target(self, kernel):
        generator, choose, selector, localizer, inst = self._policies(kernel)
        executor = Executor(kernel)
        seeds = generator.seed_corpus(5)
        baseline = executor.run(seeds[0]).coverage.blocks
        target = next(iter(baseline))
        report = fuzz_corpus(
            seeds, choose, selector, localizer, inst,
            kernel, executor, make_rng(23), targets={target},
            max_executions=500,
        )
        assert target in report.targets_reached
        assert report.executions < 500

    def test_empty_corpus_rejected(self, kernel):
        generator, choose, selector, localizer, inst = self._policies(kernel)
        with pytest.raises(CampaignError):
            fuzz_corpus(
                [], choose, selector, localizer, inst,
                kernel, Executor(kernel), make_rng(24),
            )


class TestCli:
    def test_build_kernel_command(self, capsys):
        from repro.cli import main

        assert main(["build-kernel", "--size", "small"]) == 0
        out = capsys.readouterr().out
        assert "syscall variants" in out

    def test_exec_command(self, tmp_path, capsys, kernel):
        from repro.cli import main
        from repro.syzlang import serialize_program

        generator = ProgramGenerator(kernel.table, make_rng(30))
        program = generator.random_program()
        prog_file = tmp_path / "t.syz"
        prog_file.write_text(serialize_program(program))
        code = main([
            "exec", "--size", "small", "--prog", str(prog_file),
        ])
        out = capsys.readouterr().out
        assert "blocks" in out
        assert code in (0, 1)

    def test_triage_command_on_ata(self, tmp_path, capsys, kernel):
        from repro.cli import main
        from repro.syzlang import serialize_program
        from tests.test_kernel_executor import TestAtaBug

        program = TestAtaBug()._ata_program(kernel)
        prog_file = tmp_path / "crash.syz"
        prog_file.write_text(serialize_program(program))
        code = main(["triage", "--size", "small", "--prog", str(prog_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "minimised reproducer" in out
