"""repro.analyze: abstract domain, dominators, reachability, the
dependency oracle, witness soundness, and the lint framework."""

import copy

import pytest

from repro.analyze import (
    AbstractValue,
    DependencyOracle,
    FlagRequirement,
    ReachabilityAnalysis,
    StaticOracleLocalizer,
    dominator_tree,
    findings_json,
    load_findings,
    registered_checks,
    run_corpus_checks,
    run_kernel_checks,
    static_truths,
    strict_failures,
    witness_program,
)
from repro.errors import AnalysisError
from repro.fuzzer import RandomLocalizer
from repro.fuzzer.directed import SyzDirectLocalizer
from repro.kernel import Coverage, Executor, build_kernel
from repro.kernel.blocks import BasicBlock, BlockRole
from repro.kernel.cfg import HandlerCFG
from repro.kernel.conditions import ArgCondition, CondOp, StateCondition
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig, evaluate_selector
from repro.rng import derive_seed, make_rng, split
from repro.snowplow import CampaignConfig, train_pmm
from repro.snowplow.campaign import _build_snowplow_loop
from repro.syzlang import ProgramGenerator


@pytest.fixture(scope="module")
def tiny_68():
    return build_kernel("6.8", seed=1, size="tiny")


@pytest.fixture(scope="module")
def reach_68(tiny_68):
    return ReachabilityAnalysis(tiny_68)


@pytest.fixture(scope="module")
def oracle_68(tiny_68):
    return DependencyOracle(tiny_68)


# ----- abstract domain -----


class TestAbstractValue:
    def test_eq_pins_and_contradicts(self):
        av = AbstractValue().refine(CondOp.EQ, 5, True)
        assert av.lo == av.hi == 5
        assert av.admits(5) and not av.admits(4)
        assert av.refine(CondOp.EQ, 6, True) is None
        assert av.refine(CondOp.NE, 5, True) is None

    def test_ne_trims_boundaries(self):
        av = AbstractValue(lo=3, hi=7)
        trimmed = av.refine(CondOp.NE, 3, True)
        assert trimmed.lo == 4 and trimmed.hi == 7
        pinned = AbstractValue(lo=2, hi=2)
        assert pinned.refine(CondOp.NE, 2, True) is None
        assert pinned.refine(CondOp.EQ, 2, False) is None

    def test_lt_gt_bounds(self):
        av = AbstractValue()
        assert av.refine(CondOp.LT, 10, True).hi == 9
        assert av.refine(CondOp.LT, 10, False).lo == 10
        assert av.refine(CondOp.GT, 10, True).lo == 11
        assert av.refine(CondOp.GT, 10, False).hi == 10
        assert (
            av.refine(CondOp.GT, 10, True).refine(CondOp.LT, 5, True) is None
        )

    def test_mask_set_and_clear_conflict(self):
        av = AbstractValue().refine(CondOp.MASK_SET, 0b1000, True)
        assert av.must_set == 0b1000
        assert av.refine(CondOp.MASK_CLEAR, 0b1000, True) is None

    def test_mask_negations(self):
        av = AbstractValue().refine(CondOp.MASK_SET, 0b100, True)
        # "not all bits of 0b100 set" contradicts the forced bit.
        assert av.refine(CondOp.MASK_SET, 0b100, False) is None
        # Single-bit negation of MASK_SET flips to must_clear ...
        single = AbstractValue().refine(CondOp.MASK_SET, 0b10, False)
        assert single.must_clear == 0b10
        # ... multi-bit negation stays unconstrained (sound, not exact).
        multi = AbstractValue().refine(CondOp.MASK_SET, 0b110, False)
        assert multi.must_clear == 0 and multi.must_set == 0
        # value & 0 != 0 can never hold.
        assert AbstractValue().refine(CondOp.MASK_CLEAR, 0, False) is None
        forced = AbstractValue().refine(CondOp.MASK_CLEAR, 0b1, False)
        assert forced.must_set == 0b1

    def test_interval_mask_interplay(self):
        # must_set 8 with a non-negative value forces value >= 8, so an
        # upper bound below the mask is a contradiction.
        av = AbstractValue(lo=0).refine(CondOp.MASK_SET, 8, True)
        assert av.refine(CondOp.LT, 8, True) is None
        alive = av.refine(CondOp.LT, 9, True)
        assert alive is not None and alive.example() == 8

    def test_example_satisfies(self):
        cases = [
            AbstractValue(),
            AbstractValue(lo=5, hi=9),
            AbstractValue().refine(CondOp.MASK_SET, 0b101, True),
            AbstractValue(lo=1).refine(CondOp.MASK_CLEAR, 0b1, True),
            AbstractValue(lo=-20, hi=-3),
        ]
        for av in cases:
            assert av.admits(av.example())

    def test_example_raises_on_empty(self):
        with pytest.raises(AnalysisError):
            AbstractValue(lo=1, hi=0).example()


class TestFlagRequirement:
    def test_conflicting_equalities(self):
        req = FlagRequirement().require(1, True)
        assert req.require(2, True) is None
        assert req.require(1, False) is None

    def test_needed_value(self):
        assert FlagRequirement().needed_value(frozenset()) is None
        req = FlagRequirement().require(3, True)
        assert req.needed_value(frozenset({3})) == 3
        avoid = FlagRequirement().require(0, False)
        assert avoid.needed_value(frozenset({2})) == 2
        with pytest.raises(AnalysisError):
            avoid.needed_value(frozenset())

    def test_satisfiable(self):
        req = FlagRequirement().require(7, True)
        assert not req.satisfiable(frozenset({1, 2}))
        assert req.satisfiable(frozenset({7}))
        assert not FlagRequirement().require(0, False).satisfiable(frozenset())


# ----- dominators -----


def _mk_cfg(roles, succs):
    cfg = HandlerCFG(syscall="test$cfg", entry=0)
    for block_id, role in roles.items():
        cfg.blocks[block_id] = BasicBlock(
            block_id=block_id, label=f"b{block_id}", subsystem="test",
            role=role,
        )
    cfg.succs = {k: tuple(v) for k, v in succs.items()}
    cfg.validate()
    return cfg


class TestDominatorTree:
    def test_nested_diamond(self):
        c = BlockRole.CONDITION
        b = BlockRole.BODY
        cfg = _mk_cfg(
            {0: BlockRole.ENTRY, 1: c, 2: b, 3: c, 4: b, 5: b,
             6: BlockRole.EXIT_SUCCESS},
            {0: [1], 1: [2, 3], 2: [6], 3: [4, 5], 4: [6], 5: [6], 6: []},
        )
        idom = dominator_tree(cfg)
        assert idom == {0: None, 1: 0, 2: 1, 3: 1, 4: 3, 5: 3, 6: 1}

    def test_straight_line(self):
        cfg = _mk_cfg(
            {0: BlockRole.ENTRY, 1: BlockRole.BODY,
             2: BlockRole.EXIT_SUCCESS},
            {0: [1], 1: [2], 2: []},
        )
        assert dominator_tree(cfg) == {0: None, 1: 0, 2: 1}

    def test_matches_reachability_wrapper(self, tiny_68, reach_68):
        name = sorted(tiny_68.handlers)[0]
        assert reach_68.dominators(name) == dominator_tree(
            tiny_68.handlers[name]
        )


# ----- reachability -----


def _inject_dead_bug_chain(kernel):
    """A copy of ``kernel`` where one bug's crash block is made
    statically dead by rewriting a condition on its feasible path."""
    mutant = copy.deepcopy(kernel)
    reach = ReachabilityAnalysis(mutant)
    for bug_id in sorted(mutant.bug_blocks):
        crash_id = mutant.bug_blocks[bug_id]
        path = reach.feasible_path(crash_id)
        if path is None:
            continue
        cfg = mutant.handlers[path.syscall]
        for prev, nxt in zip(path.blocks, path.blocks[1:]):
            block = mutant.blocks[prev]
            if block.role is not BlockRole.CONDITION:
                continue
            if not isinstance(block.condition, ArgCondition):
                continue
            taken = cfg.succs[prev][1] == nxt
            if taken:
                # Demand a flag value no effect block ever writes.
                block.condition = StateCondition(
                    key="injected_never_written", operand=7
                )
            else:
                # The not-taken edge of `value & 0 == 0` is vacuously
                # unsatisfiable.
                block.condition = ArgCondition(
                    block.condition.syscall,
                    block.condition.path_elements,
                    CondOp.MASK_CLEAR,
                    0,
                )
            return mutant, crash_id
    raise AssertionError("no bug chain with an ArgCondition on its path")


class TestReachability:
    def test_dead_blocks_exist_and_are_consistent(self, tiny_68, reach_68):
        dead = reach_68.dead_blocks()
        assert dead, "generator's nested conditions produce dead blocks"
        assert dead <= set(tiny_68.blocks)
        for block_id in sorted(dead)[:10]:
            assert reach_68.is_dead(block_id)
            assert not reach_68.solvable(block_id)
        # Stock kernels keep every planted bug chain reachable.
        assert not any(
            tiny_68.blocks[b].role is BlockRole.CRASH for b in dead
        )

    def test_feasible_path_is_a_real_path(self, tiny_68, reach_68):
        checked = 0
        for name in sorted(tiny_68.handlers)[:6]:
            cfg = tiny_68.handlers[name]
            for block_id in sorted(cfg.blocks):
                if reach_68.is_dead(block_id):
                    continue
                path = reach_68.feasible_path(block_id)
                assert path is not None
                assert path.blocks[0] == cfg.entry
                assert path.blocks[-1] == block_id
                for prev, nxt in zip(path.blocks, path.blocks[1:]):
                    assert nxt in cfg.succs[prev]
                checked += 1
        assert checked > 0

    def test_distance_matches_kernel(self, tiny_68, reach_68):
        target = sorted(tiny_68.bug_blocks.values())[0]
        assert reach_68.distance_to(target) == tiny_68.distance_to(target)

    def test_injected_contradiction_kills_bug_chain(self, tiny_68):
        mutant, crash_id = _inject_dead_bug_chain(tiny_68)
        assert crash_id in ReachabilityAnalysis(mutant).dead_blocks()
        # The pristine kernel is untouched.
        assert crash_id not in ReachabilityAnalysis(tiny_68).dead_blocks()


# ----- witness soundness / completeness -----


class TestWitnessSoundness:
    def test_witnesses_cover_their_targets_68(self, tiny_68, reach_68,
                                              oracle_68):
        executor = Executor(tiny_68, seed=7)
        targets = []
        for name in sorted(tiny_68.handlers):
            cfg = tiny_68.handlers[name]
            live = [
                b for b in sorted(cfg.blocks) if not reach_68.is_dead(b)
            ]
            targets.extend(live[::5])  # sampled; the bench runs them all
        targets.extend(sorted(tiny_68.bug_blocks.values()))
        assert targets
        for block_id in targets:
            program = witness_program(
                tiny_68, block_id, reach=reach_68, oracle=oracle_68
            )
            assert program is not None, f"no witness for live {block_id}"
            result = executor.run(program)
            assert block_id in result.coverage.blocks, (
                f"witness misses its target block {block_id}"
            )

    @pytest.mark.parametrize("version", ["6.9", "6.10"])
    def test_witnesses_cover_their_targets_other_releases(self, version):
        kernel = build_kernel(version, seed=1, size="tiny")
        reach = ReachabilityAnalysis(kernel)
        oracle = DependencyOracle(kernel)
        executor = Executor(kernel, seed=7)
        live = [
            b for name in sorted(kernel.handlers)
            for b in sorted(kernel.handlers[name].blocks)
            if not reach.is_dead(b)
        ]
        for block_id in live[::9]:
            program = witness_program(
                kernel, block_id, reach=reach, oracle=oracle
            )
            assert program is not None
            assert block_id in executor.run(program).coverage.blocks

    def test_random_programs_never_cover_dead_blocks(self, tiny_68,
                                                     reach_68):
        dead = reach_68.dead_blocks()
        executor = Executor(tiny_68, seed=3)
        generator = ProgramGenerator(tiny_68.table, make_rng(42))
        for _ in range(150):
            result = executor.run(generator.random_program())
            hit = result.coverage.blocks & dead
            assert not hit, f"'dead' blocks {sorted(hit)} were covered"


# ----- dependency oracle -----


class TestDependencyOracle:
    def test_mandatory_predicates_lie_on_every_path(self, tiny_68,
                                                    oracle_68, reach_68):
        name = sorted(tiny_68.handlers)[0]
        cfg = tiny_68.handlers[name]
        for block_id in sorted(cfg.blocks):
            if reach_68.is_dead(block_id):
                continue
            path = reach_68.feasible_path(block_id)
            resolved = {}
            for prev, nxt in zip(path.blocks, path.blocks[1:]):
                block = tiny_68.blocks[prev]
                if block.role is BlockRole.CONDITION:
                    resolved[block.condition] = cfg.succs[prev][1] == nxt
            for predicate in oracle_68.mandatory_predicates(block_id):
                assert resolved.get(predicate.condition) == predicate.taken

    def test_steering_paths_point_into_the_program(self, tiny_68,
                                                   oracle_68):
        generator = ProgramGenerator(tiny_68.table, make_rng(5))
        programs = [generator.random_program() for _ in range(20)]
        seen_any = False
        for block_id in sorted(tiny_68.blocks):
            deps = oracle_68.dependencies(block_id)
            if not deps.slots:
                continue
            for program in programs:
                for path in deps.steering_paths(program):
                    assert path.call_index < len(program.calls)
                    spec = program.calls[path.call_index].spec
                    seen_any = True
                    assert spec.full_name in (
                        {s.syscall for s in deps.slots}
                        | {
                            slot.syscall
                            for dep in deps.state_deps
                            for slot in dep.producer_slots
                        }
                    )
        assert seen_any

    def test_state_deps_have_producers_or_default(self, tiny_68, oracle_68):
        state_dep_seen = False
        for block_id in sorted(tiny_68.blocks):
            for dep in oracle_68.dependencies(block_id).state_deps:
                state_dep_seen = True
                assert dep.default_satisfied or dep.producers, (
                    f"state dep on {dep.key} has no producer"
                )
                writer_syscalls = {
                    tiny_68.handler_of_block[b]
                    for b in oracle_68.effect_writers(dep.key)
                }
                assert set(dep.producers) <= writer_syscalls
        assert state_dep_seen


class TestStaticOracleLocalizer:
    @pytest.fixture(scope="class")
    def trained_tiny(self, tiny_68):
        return train_pmm(
            tiny_68,
            seed=0,
            corpus_size=15,
            dataset_config=DatasetConfig(
                mutations_per_test=25, seed=derive_seed(0, "d")
            ),
            pmm_config=PMMConfig(dim=16, seed=derive_seed(0, "m")),
            train_config=TrainConfig(epochs=0, seed=derive_seed(0, "t")),
        )

    def test_perfect_against_static_truth(self, tiny_68, trained_tiny):
        dataset = trained_tiny.dataset
        holdout = dataset.evaluation[:60]
        assert holdout
        localizer = StaticOracleLocalizer(tiny_68)
        truths = static_truths(localizer, dataset.programs, holdout)
        predictions = [
            set(localizer.localize(
                dataset.programs[e.base_index], None, e.targets, None
            ))
            for e in holdout
        ]
        metrics = evaluate_selector(predictions, truths)
        assert metrics.precision == metrics.recall == 1.0
        rng = make_rng(9)
        random_metrics = evaluate_selector(
            [
                set(RandomLocalizer(3).localize(
                    dataset.programs[e.base_index], None, None, rng
                ))
                for e in holdout
            ],
            truths,
        )
        assert random_metrics.f1 < 1.0

    def test_max_paths_truncates(self, tiny_68, trained_tiny):
        dataset = trained_tiny.dataset
        example = dataset.evaluation[0]
        program = dataset.programs[example.base_index]
        full = StaticOracleLocalizer(tiny_68).localize(
            program, None, example.targets, None
        )
        capped = StaticOracleLocalizer(tiny_68, max_paths=1).localize(
            program, None, example.targets, None
        )
        assert capped == full[:1]


# ----- directed steering + dead-target skipping -----


class TestFuzzerIntegration:
    def test_syzdirect_prefers_oracle_slots(self, tiny_68, oracle_68):
        generator = ProgramGenerator(tiny_68.table, make_rng(17))
        rng = make_rng(18)
        for block_id in sorted(tiny_68.bug_blocks.values()):
            syscall = tiny_68.handler_of_block[block_id]
            deps = oracle_68.dependencies(block_id)
            localizer = SyzDirectLocalizer(syscall, k=4, oracle=oracle_68)
            for _ in range(10):
                program = generator.random_program()
                pending = deps.pending_paths(program)
                every = deps.steering_paths(program)
                got = localizer.localize(program, None, {block_id}, rng)
                # Violated slots win; an all-satisfied program falls
                # back to the full mandatory slot set, untruncated.
                if pending:
                    assert got == pending
                elif every:
                    assert got == every

    def test_dead_targets_skipped_counter(self, tiny_68, reach_68):
        config = CampaignConfig(
            horizon=600.0, runs=1, seed=11, seed_corpus_size=6,
            sample_interval=300.0,
        )
        run_seed = derive_seed(config.seed, "analyze-test", 0)
        loop = _build_snowplow_loop(
            tiny_68, None, run_seed, config, oracle=True,
            analysis=reach_68,
        )
        dead_id = sorted(reach_68.dead_blocks())[0]
        pred = tiny_68.preds[dead_id][0]
        coverage = Coverage(blocks={pred})
        before = loop.stats.dead_targets_skipped
        targets = loop._query_targets(coverage)
        assert loop.stats.dead_targets_skipped > before
        assert targets is None or dead_id not in targets

    def test_loop_without_analysis_unchanged(self, tiny_68):
        config = CampaignConfig(
            horizon=600.0, runs=1, seed=11, seed_corpus_size=6,
            sample_interval=300.0,
        )
        run_seed = derive_seed(config.seed, "analyze-test", 1)
        loop = _build_snowplow_loop(tiny_68, None, run_seed, config,
                                    oracle=True)
        seeds = ProgramGenerator(
            tiny_68.table, split(run_seed, "s")
        ).seed_corpus(6)
        loop.seed(seeds)
        stats = loop.run()
        assert stats.dead_targets_skipped == 0


# ----- lint framework -----


class TestLint:
    def test_registry(self):
        kernel_names = {c.name for c in registered_checks("kernel")}
        assert {
            "unreachable-block", "dead-bug-chain",
            "contradictory-predicates", "orphan-slot-token",
            "state-without-producer", "unsteerable-branch",
        } <= kernel_names
        corpus_names = {c.name for c in registered_checks("corpus")}
        assert {
            "resource-before-produced", "dangling-resource",
            "null-pointer-blocks-predicate",
        } <= corpus_names

    def test_stock_kernel_has_no_errors(self, tiny_68, reach_68, oracle_68):
        findings = run_kernel_checks(tiny_68, reach_68, oracle_68)
        assert findings, "dead blocks should produce warnings"
        assert not strict_failures(findings)

    def test_golden_findings(self, tiny_68, reach_68, oracle_68):
        findings = run_kernel_checks(tiny_68, reach_68, oracle_68)
        text = findings_json(
            findings,
            scope="kernel", releases=["6.8"], size="tiny", kernel_seed=1,
        )
        golden = (
            __import__("pathlib").Path(__file__).parent
            / "golden" / "findings_tiny_68.json"
        )
        assert text == golden.read_text(), (
            "findings drifted from tests/golden/findings_tiny_68.json; "
            "regenerate it if the change is intentional"
        )
        parsed = load_findings(text)
        assert [f.to_dict() for f in parsed] == [
            f.to_dict() for f in sorted(findings, key=type(findings[0]).sort_key)
        ]

    def test_injected_contradiction_fails_strict(self, tiny_68):
        mutant, crash_id = _inject_dead_bug_chain(tiny_68)
        findings = run_kernel_checks(mutant)
        errors = strict_failures(findings)
        assert errors, "--strict must trip on the injected contradiction"
        assert any(
            f.check == "dead-bug-chain" and f"block/{crash_id}" in f.location
            for f in errors
        )

    def test_corpus_checks_shapes(self, tiny_68):
        generator = ProgramGenerator(tiny_68.table, make_rng(23))
        programs = [generator.random_program() for _ in range(30)]
        findings = run_corpus_checks(tiny_68, programs)
        names = {c.name for c in registered_checks("corpus")}
        for finding in findings:
            assert finding.check in names
            assert finding.scope == "corpus"
            assert finding.location.startswith("program/")

    def test_namespace_prefixes_locations(self, tiny_68, reach_68,
                                          oracle_68):
        findings = run_kernel_checks(
            tiny_68, reach_68, oracle_68, namespace="6.8/"
        )
        assert findings
        assert all(f.location.startswith("6.8/") for f in findings)


# ----- CLI -----


class TestAnalyzeCLI:
    def test_analyze_kernel_strict_passes_stock(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "findings.json"
        code = main([
            "analyze", "kernel", "--size", "tiny", "--strict",
            "--out", str(out),
        ])
        assert code == 0
        findings = load_findings(out.read_text())
        assert findings and not strict_failures(findings)
        assert "statically dead" in capsys.readouterr().out

    def test_analyze_corpus_runs(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "findings.json"
        code = main([
            "analyze", "corpus", "--size", "tiny", "--seed-corpus", "20",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert "corpus: 20 programs" in capsys.readouterr().out
