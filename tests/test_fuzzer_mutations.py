"""Tests for the argument instantiator and mutation engine."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import MutationError
from repro.fuzzer import MutationEngine, RandomLocalizer, SyzkallerLocalizer
from repro.fuzzer.engine import TypeSelector
from repro.fuzzer.mutations import ArgumentInstantiator, MutationType
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator
from repro.syzlang.program import (
    ArgPath,
    BufferValue,
    IntValue,
    ResourceValue,
)
from repro.syzlang.types import IntType


@pytest.fixture()
def instantiator(kernel, generator):
    return ArgumentInstantiator(generator, make_rng(50))


class TestInstantiator:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mutated_programs_stay_valid(self, kernel, seed):
        """Property: instantiating any mutation site keeps the program
        well-formed."""
        rng = make_rng(seed)
        generator = ProgramGenerator(kernel.table, rng)
        instantiator = ArgumentInstantiator(generator, rng)
        program = generator.random_program()
        sites = program.mutation_sites()
        path = sites[int(rng.integers(len(sites)))]
        instantiator.instantiate(program, path)
        program.validate(kernel.table)

    def test_int_stays_in_range(self, kernel, generator, instantiator):
        ty = IntType(bits=32, minimum=10, maximum=50)
        program = generator.random_program()
        site = program.mutation_sites()[0]
        program.set(site, IntValue(ty, 30))
        for _ in range(100):
            instantiator.instantiate(program, site)
            value = program.get(site)
            assert 10 <= value.value <= 50

    def test_buffer_respects_max_len(self, kernel, generator, instantiator):
        program = generator.random_program()
        buffer_sites = [
            path for path in program.mutation_sites()
            if isinstance(program.get(path), BufferValue)
        ]
        if not buffer_sites:
            pytest.skip("no buffer in this program")
        site = buffer_sites[0]
        max_len = program.get(site).ty.max_len
        for _ in range(50):
            instantiator.instantiate(program, site)
            assert len(program.get(site).data) <= max_len

    def test_resource_points_to_earlier_producer(
        self, kernel, generator, instantiator
    ):
        for _ in range(30):
            program = generator.random_program()
            resource_sites = [
                path for path in program.mutation_sites()
                if isinstance(program.get(path), ResourceValue)
            ]
            for site in resource_sites:
                instantiator.instantiate(program, site)
                program.validate(kernel.table)

    def test_immutable_path_rejected(self, kernel, generator, instantiator):
        program = generator.random_program()
        # Find a pointer (container) value: not a mutation site.
        from repro.syzlang.program import PtrValue

        ptr_path = next(
            (path for path, value in program.walk()
             if isinstance(value, PtrValue) and value.pointee is not None),
            None,
        )
        if ptr_path is None:
            pytest.skip("no pointer in this program")
        with pytest.raises(MutationError):
            instantiator.instantiate(program, ptr_path)

    def test_len_desync_possible(self, kernel, generator):
        """The length-desync strategy (the ATA trigger pattern) must be
        reachable: some mutation makes a len field exceed its buffer."""
        rng = make_rng(51)
        instantiator = ArgumentInstantiator(generator, rng)
        program = generator.random_program()
        from repro.syzlang.types import LenType

        len_sites = [
            path for path in program.mutation_sites()
            if isinstance(program.get(path).ty, LenType)
        ]
        if not len_sites:
            pytest.skip("no len field in this program")
        site = len_sites[0]
        values = set()
        for _ in range(60):
            instantiator.instantiate(program, site)
            values.add(program.get(site).value)
        assert any(value >= 4096 for value in values)


class TestTypeSelector:
    def test_distribution(self):
        selector = TypeSelector(0.6, 0.3, 0.1)
        rng = make_rng(0)

        class FakeProgram(list):
            def __len__(self):
                return 3

        counts = {}
        for _ in range(3000):
            choice = selector.select(FakeProgram(), None, rng)
            counts[choice] = counts.get(choice, 0) + 1
        assert counts[MutationType.ARGUMENT_MUTATION] > counts[
            MutationType.SYSCALL_INSERTION
        ] > counts[MutationType.SYSCALL_REMOVAL]

    def test_no_removal_of_single_call(self, kernel, generator):
        selector = TypeSelector(0.0, 0.0, 1.0)
        rng = make_rng(1)
        program = generator.random_program(length=1)
        if len(program) > 1:
            pytest.skip("generator prepended producers")
        assert (
            selector.select(program, None, rng)
            is MutationType.ARGUMENT_MUTATION
        )

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            TypeSelector(-1.0, 0.5, 0.5)


class TestMutationEngine:
    def _engine(self, kernel, seed=0):
        rng = make_rng(seed)
        generator = ProgramGenerator(kernel.table, rng)
        return MutationEngine(
            TypeSelector(), SyzkallerLocalizer(k=1), generator, rng
        ), generator

    def test_base_never_modified(self, kernel):
        engine, generator = self._engine(kernel)
        from repro.syzlang import serialize_program

        base = generator.random_program()
        before = serialize_program(base)
        for _ in range(30):
            engine.mutate_test(base)
        assert serialize_program(base) == before

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mutants_valid(self, kernel, seed):
        engine, generator = self._engine(kernel, seed)
        base = generator.random_program()
        outcome = engine.mutate_test(base)
        outcome.program.validate(kernel.table)

    def test_forced_paths_bypass_selection(self, kernel):
        engine, generator = self._engine(kernel)
        base = generator.random_program()
        paths = base.mutation_sites()[:2]
        outcome = engine.mutate_test(base, forced_paths=paths)
        assert outcome.mutation_type is MutationType.ARGUMENT_MUTATION
        assert outcome.mutated_paths == paths

    def test_insertion_grows_program(self, kernel):
        engine, generator = self._engine(kernel)
        engine.selector = TypeSelector(0.0, 1.0, 0.0)
        base = generator.random_program()
        outcome = engine.mutate_test(base)
        assert len(outcome.program) == len(base) + 1
        outcome.program.validate(kernel.table)

    def test_removal_shrinks_program(self, kernel):
        engine, generator = self._engine(kernel)
        engine.selector = TypeSelector(0.0, 0.0, 1.0)
        base = generator.random_program(length=4)
        outcome = engine.mutate_test(base)
        assert len(outcome.program) == len(base) - 1
        outcome.program.validate(kernel.table)


class TestLocalizers:
    def test_random_localizer_k(self, kernel, generator):
        localizer = RandomLocalizer(8)
        program = generator.random_program()
        paths = localizer.localize(program, None, None, make_rng(0))
        assert len(paths) == min(8, len(program.mutation_sites()))
        assert len(set(paths)) == len(paths)

    def test_random_localizer_bad_k(self):
        with pytest.raises(ValueError):
            RandomLocalizer(0)

    def test_syzkaller_localizer_arity_bias(self, kernel, generator):
        """Calls with more sites are picked more often."""
        localizer = SyzkallerLocalizer(k=1)
        rng = make_rng(2)
        program = generator.random_program()
        by_call = {}
        for path in program.mutation_sites():
            by_call[path.call_index] = by_call.get(path.call_index, 0) + 1
        if len(by_call) < 2:
            pytest.skip("single-call program")
        counts = {}
        for _ in range(600):
            (path,) = localizer.localize(program, None, None, rng)
            counts[path.call_index] = counts.get(path.call_index, 0) + 1
        richest = max(by_call, key=by_call.get)
        poorest = min(by_call, key=by_call.get)
        if by_call[richest] > 2 * by_call[poorest]:
            assert counts.get(richest, 0) > counts.get(poorest, 0)

    def test_localizers_return_valid_sites(self, kernel, generator):
        program = generator.random_program()
        sites = set(program.mutation_sites())
        for localizer in (RandomLocalizer(4), SyzkallerLocalizer(k=3)):
            paths = localizer.localize(program, None, None, make_rng(3))
            assert set(paths) <= sites
