"""Tests for the oracle localizer (the mechanism's upper bound)."""

import numpy as np

from repro.kernel import Executor
from repro.kernel.conditions import ArgCondition
from repro.rng import make_rng
from repro.snowplow.oracle import OracleLocalizer
from repro.syzlang import ProgramGenerator


class TestOracleLocalizer:
    def test_returns_guard_paths(self, kernel, generator, executor):
        oracle = OracleLocalizer(kernel)
        rng = make_rng(0)
        program = generator.random_program()
        coverage = executor.run(program).coverage
        frontier = [
            block for block in sorted(kernel.frontier(coverage.blocks))
            if isinstance(kernel.guarding_condition(block), ArgCondition)
        ]
        if not frontier:
            return
        targets = set(frontier[:4])
        paths = oracle.localize(program, coverage, targets, rng)
        # Every returned path matches some target's guard condition.
        for path in paths:
            call = program.calls[path.call_index]
            matched = any(
                (cond := kernel.guarding_condition(t)) is not None
                and isinstance(cond, ArgCondition)
                and cond.syscall == call.spec.full_name
                and cond.path_elements == path.elements
                for t in targets
            )
            assert matched

    def test_empty_targets_empty_paths(self, kernel, generator):
        oracle = OracleLocalizer(kernel)
        program = generator.random_program()
        assert oracle.localize(program, None, set(), make_rng(1)) == []

    def test_max_paths_respected(self, kernel, generator, executor):
        oracle = OracleLocalizer(kernel, max_paths=2)
        program = generator.random_program()
        coverage = executor.run(program).coverage
        frontier = set(list(kernel.frontier(coverage.blocks))[:20])
        paths = oracle.localize(program, coverage, frontier, make_rng(2))
        assert len(paths) <= 2

    def test_oracle_beats_random_at_target_hitting(self, kernel, executor):
        """The white-box mechanism itself: mutating oracle paths hits
        targets far more often than mutating random sites."""
        from repro.fuzzer.mutations import ArgumentInstantiator

        generator = ProgramGenerator(kernel.table, make_rng(3))
        rng = make_rng(4)
        instantiator = ArgumentInstantiator(generator, rng)
        oracle = OracleLocalizer(kernel)
        hits = {"oracle": 0, "random": 0}
        tries = {"oracle": 0, "random": 0}
        for _ in range(25):
            base = generator.random_program()
            coverage = executor.run(base).coverage
            frontier = [
                block
                for block in sorted(kernel.frontier(coverage.blocks))
                if isinstance(kernel.guarding_condition(block), ArgCondition)
            ]
            if not frontier:
                continue
            targets = set(frontier[:6])
            oracle_paths = oracle.localize(base, coverage, targets, rng)
            sites = base.mutation_sites()
            for mode in ("oracle", "random"):
                for _ in range(8):
                    mutant = base.clone()
                    if mode == "oracle":
                        if not oracle_paths:
                            continue
                        path = oracle_paths[
                            int(rng.integers(len(oracle_paths)))
                        ]
                    else:
                        path = sites[int(rng.integers(len(sites)))]
                    try:
                        instantiator.instantiate(mutant, path)
                    except Exception:
                        continue
                    tries[mode] += 1
                    result = executor.run(mutant)
                    if result.coverage.blocks & targets:
                        hits[mode] += 1
        oracle_rate = hits["oracle"] / max(tries["oracle"], 1)
        random_rate = hits["random"] / max(tries["random"], 1)
        assert oracle_rate > random_rate
