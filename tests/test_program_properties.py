"""Hypothesis property tests on core program invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.rng import make_rng
from repro.syzlang import ProgramGenerator, build_standard_table


def _program(seed, table):
    return ProgramGenerator(table, make_rng(seed)).random_program()


class TestStructuralInvariants:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 50_000), removals=st.integers(1, 3))
    def test_removal_sequence_keeps_validity(self, table, seed, removals):
        """Property: any sequence of call removals leaves the program
        valid (dangling resources become NULL, indices shift)."""
        rng = make_rng(seed)
        program = _program(seed, table)
        for _ in range(removals):
            if len(program) <= 1:
                break
            program.remove_call(int(rng.integers(len(program))))
        program.validate(table)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 50_000))
    def test_insertion_keeps_validity(self, table, seed):
        rng = make_rng(seed)
        generator = ProgramGenerator(table, rng)
        program = generator.random_program()
        spec = table.specs[int(rng.integers(len(table.specs)))]
        position = int(rng.integers(0, len(program) + 1))
        call = generator.random_call(spec, {})
        program.insert_call(position, call)
        program.validate(table)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 50_000))
    def test_mutation_sites_resolve(self, table, seed):
        """Property: every enumerated mutation site resolves via get()
        to a mutable leaf."""
        program = _program(seed, table)
        for path in program.mutation_sites():
            value = program.get(path)
            assert value.ty.is_mutable()

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 50_000))
    def test_clone_preserves_sites_and_serialization(self, table, seed):
        from repro.syzlang import serialize_program

        program = _program(seed, table)
        clone = program.clone()
        assert serialize_program(clone) == serialize_program(program)
        assert [p.elements for p in clone.mutation_sites()] == [
            p.elements for p in program.mutation_sites()
        ]

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 50_000))
    def test_flat_args_subset_of_walk(self, table, seed):
        program = _program(seed, table)
        for call_index in range(len(program)):
            flat = program.flat_args(call_index)
            walked = {
                path.elements for path, _ in program.walk_call(call_index)
            }
            assert set(flat) <= walked
