"""Tests for hint plumbing through the mutation engine and loops."""

import numpy as np

from repro.fuzzer import MutationEngine, SyzkallerLocalizer
from repro.fuzzer.engine import TypeSelector
from repro.kernel import Executor
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator
from repro.syzlang.program import IntValue
from repro.syzlang.types import IntType


class TestEngineHints:
    def _engine(self, kernel, seed=0):
        rng = make_rng(seed)
        generator = ProgramGenerator(kernel.table, rng)
        return MutationEngine(
            TypeSelector(1.0, 0.0, 0.0), SyzkallerLocalizer(k=1),
            generator, rng,
        )

    def test_hints_reach_instantiator(self, kernel):
        """With a dominant hint set, mutated integer args take hint
        values far more often than chance."""
        engine = self._engine(kernel)
        generator = ProgramGenerator(kernel.table, make_rng(1))
        base = generator.random_program()
        magic = 31337
        hits = total = 0
        for _ in range(300):
            outcome = engine.mutate_test(base, hints=frozenset({magic}))
            for path in outcome.mutated_paths:
                value = outcome.program.get(path)
                if isinstance(value, IntValue) and isinstance(
                    value.ty, IntType
                ):
                    total += 1
                    upper = value.ty.upper_bound
                    if value.value == min(magic, upper) and magic <= upper:
                        hits += 1
        if total == 0:
            return  # no integer sites were localized; nothing to check
        assert hits / total > 0.05

    def test_forced_paths_use_high_hint_probability(self, kernel):
        """Burst mutations (forced paths) apply hints more aggressively
        than regular argument mutations."""
        engine = self._engine(kernel, seed=2)
        generator = ProgramGenerator(kernel.table, make_rng(3))
        base = generator.random_program()
        def usable(path):
            value = base.get(path)
            return (
                isinstance(value, IntValue)
                and isinstance(value.ty, IntType)
                and value.ty.align == 1
                and value.ty.minimum <= 4242 <= value.ty.upper_bound
            )

        int_sites = [p for p in base.mutation_sites() if usable(p)]
        if not int_sites:
            return
        site = int_sites[0]
        magic = 4242
        forced_hits = 0
        for _ in range(300):
            outcome = engine.mutate_test(
                base, forced_paths=[site], hints=frozenset({magic})
            )
            value = outcome.program.get(site)
            if value.value == magic:
                forced_hits += 1
        # hint_prob 0.6 with a single usable hint: expect a large share.
        assert forced_hits > 100

    def test_loop_propagates_hints_to_corpus(self, kernel):
        from repro.fuzzer import CrashTriage, FuzzLoop
        from repro.vclock import CostModel, VirtualClock

        rng = make_rng(4)
        generator = ProgramGenerator(kernel.table, rng)
        executor = Executor(kernel)
        engine = MutationEngine(
            TypeSelector(), SyzkallerLocalizer(k=1), generator, make_rng(5)
        )
        loop = FuzzLoop(
            kernel, engine, executor, CrashTriage(executor, set()),
            VirtualClock(horizon=200.0), CostModel(), make_rng(6),
        )
        loop.seed(generator.seed_corpus(5))
        assert all(entry.hints for entry in loop.corpus.entries)
        loop.run()
        # Entries admitted during fuzzing carry hints too.
        assert all(entry.hints for entry in loop.corpus.entries)
