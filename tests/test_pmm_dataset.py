"""Tests for the §3.1 mutation-dataset pipeline."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.kernel import Executor
from repro.pmm.dataset import (
    DatasetConfig,
    MutationExample,
    MutationSample,
    _apply_popularity_cap,
    harvest_mutations,
    make_examples,
)
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator
from repro.syzlang.program import ArgPath


@pytest.fixture(scope="module")
def dataset(kernel):
    generator = ProgramGenerator(kernel.table, make_rng(200))
    executor = Executor(kernel)
    corpus = generator.seed_corpus(20)
    config = DatasetConfig(mutations_per_test=40, seed=9)
    return harvest_mutations(kernel, executor, generator, corpus, config)


class TestHarvest:
    def test_empty_corpus_rejected(self, kernel, generator, executor):
        with pytest.raises(DatasetError):
            harvest_mutations(
                kernel, executor, generator, [], DatasetConfig()
            )

    def test_samples_reference_kept_bases(self, dataset):
        for sample in dataset.samples:
            assert 0 <= sample.base_index < len(dataset.programs)

    def test_sample_new_blocks_disjoint_from_base(self, dataset):
        for sample in dataset.samples[:50]:
            base_cov = dataset.coverages[sample.base_index]
            assert not (sample.new_blocks & base_cov.blocks)

    def test_sample_paths_are_base_sites(self, dataset):
        for sample in dataset.samples[:50]:
            sites = set(dataset.programs[sample.base_index].mutation_sites())
            assert sample.mutated_paths <= sites

    def test_splits_partition_by_base(self, dataset):
        train_bases = {e.base_index for e in dataset.train}
        val_bases = {e.base_index for e in dataset.validation}
        eval_bases = {e.base_index for e in dataset.evaluation}
        assert not (train_bases & val_bases)
        assert not (train_bases & eval_bases)
        assert not (val_bases & eval_bases)

    def test_stats_shape(self, dataset):
        stats = dataset.stats()
        assert stats["base_tests"] == len(dataset.programs)
        assert stats["samples"] == len(dataset.samples)
        assert stats["avg_mutation_sites"] > 0

    def test_deterministic(self, kernel):
        def build():
            generator = ProgramGenerator(kernel.table, make_rng(300))
            executor = Executor(kernel)
            corpus = generator.seed_corpus(5)
            return harvest_mutations(
                kernel, executor, generator, corpus,
                DatasetConfig(mutations_per_test=20, seed=4),
            )

        a, b = build(), build()
        assert len(a.samples) == len(b.samples)
        assert [s.new_blocks for s in a.samples] == [
            s.new_blocks for s in b.samples
        ]


class TestMakeExamples:
    def test_five_fraction_variants(self, kernel, dataset):
        rng = make_rng(0)
        sample = next(
            s for s in dataset.samples
            if s.new_blocks
            & kernel.frontier(dataset.coverages[s.base_index].blocks)
        )
        peers = [s for s in dataset.samples if s.base_index == sample.base_index]
        examples = make_examples(
            sample, peers, dataset.coverages[sample.base_index], kernel, rng
        )
        assert len(examples) == 5

    def test_targets_overlap_achieved(self, kernel, dataset):
        """§3.1: every example's targets overlap the sample's near new
        coverage — the model never trains on unreachable-only targets."""
        rng = make_rng(1)
        checked = 0
        for sample in dataset.samples[:30]:
            coverage = dataset.coverages[sample.base_index]
            frontier = kernel.frontier(coverage.blocks)
            achieved = sample.new_blocks & frontier
            if not achieved:
                continue
            peers = [
                s for s in dataset.samples
                if s.base_index == sample.base_index
            ]
            for example in make_examples(sample, peers, coverage, kernel, rng):
                assert example.targets & achieved
                checked += 1
        assert checked > 0

    def test_labels_include_sample_paths(self, kernel, dataset):
        rng = make_rng(2)
        for sample in dataset.samples[:20]:
            coverage = dataset.coverages[sample.base_index]
            frontier = kernel.frontier(coverage.blocks)
            if not sample.new_blocks & frontier:
                continue
            peers = [
                s for s in dataset.samples
                if s.base_index == sample.base_index
            ]
            for example in make_examples(sample, peers, coverage, kernel, rng):
                # The sample's own achieved targets are among the example
                # targets, so its mutated paths must be labelled.
                assert sample.mutated_paths <= example.labels

    def test_far_sample_skipped(self, kernel, dataset):
        rng = make_rng(3)
        sample = MutationSample(
            base_index=0,
            mutated_paths=frozenset({ArgPath(0, (0,))}),
            new_blocks=frozenset({-1}),  # not in any frontier
        )
        coverage = dataset.coverages[0]
        assert make_examples(sample, [sample], coverage, kernel, rng) == []


class TestPopularityCap:
    def _example(self, block, base=0):
        return MutationExample(
            base_index=base,
            targets=frozenset({block}),
            labels=frozenset({ArgPath(0, (0,))}),
        )

    def test_cap_enforced(self):
        examples = [self._example(7) for _ in range(100)]
        kept = _apply_popularity_cap(examples, cap=10, rng=make_rng(0))
        assert len(kept) == 10

    def test_unpopular_blocks_untouched(self):
        examples = [self._example(block) for block in range(50)]
        kept = _apply_popularity_cap(examples, cap=10, rng=make_rng(0))
        assert len(kept) == 50

    def test_bad_cap_rejected(self):
        with pytest.raises(DatasetError):
            _apply_popularity_cap([], cap=0, rng=make_rng(0))


class TestEncoding:
    def test_encode_example_labels(self, kernel, dataset):
        from repro.graphs import AsmVocab, GraphEncoder

        vocab = AsmVocab.build(kernel)
        encoder = GraphEncoder(vocab, kernel.table)
        example = (dataset.train or dataset.evaluation)[0]
        encoded = dataset.encode_example(example, kernel, encoder)
        assert encoded.labels is not None
        labelled = int(encoded.labels.sum())
        assert labelled == len(
            set(example.labels)
            & set(dataset.programs[example.base_index].mutation_sites())
        )
