"""Tests for the assembly Transformer encoder."""

import numpy as np
import pytest

from repro.graphs.encode import MAX_ASM_LEN, PAD
from repro.pmm.asm_encoder import AsmEncoder, MaskedLMHead
from repro.rng import make_rng


@pytest.fixture()
def encoder():
    return AsmEncoder(vocab_size=50, dim=16, heads=2, layers=1,
                      rng=make_rng(0))


class TestAsmEncoder:
    def test_pooled_shape(self, encoder):
        tokens = np.zeros((3, MAX_ASM_LEN), dtype=np.int64)
        tokens[:, :4] = make_rng(1).integers(3, 50, size=(3, 4))
        pooled = encoder(tokens)
        assert pooled.shape == (3, 16)

    def test_padding_ignored_in_pool(self, encoder):
        """Changing padded positions must not change pooled output."""
        tokens = np.zeros((1, MAX_ASM_LEN), dtype=np.int64)
        tokens[0, :3] = [5, 6, 7]
        base = encoder(tokens).data
        altered = tokens.copy()
        # PAD rows stay PAD in the mask computation, so this must be
        # identical to base by construction of the mask.
        assert np.allclose(base, encoder(altered).data)

    def test_order_sensitivity(self, encoder):
        """Positional embeddings make token order matter."""
        a = np.zeros((1, MAX_ASM_LEN), dtype=np.int64)
        b = np.zeros((1, MAX_ASM_LEN), dtype=np.int64)
        a[0, :3] = [5, 6, 7]
        b[0, :3] = [7, 6, 5]
        assert not np.allclose(encoder(a).data, encoder(b).data)

    def test_contextual_states_shape(self, encoder):
        tokens = np.zeros((2, MAX_ASM_LEN), dtype=np.int64)
        tokens[:, :5] = 4
        states = encoder.encode_tokens(tokens)
        assert states.shape == (2, MAX_ASM_LEN, 16)

    def test_mlm_head_projects_to_vocab(self, encoder):
        head = MaskedLMHead(encoder, make_rng(2))
        tokens = np.zeros((2, MAX_ASM_LEN), dtype=np.int64)
        tokens[:, :3] = 9
        logits = head(encoder.encode_tokens(tokens))
        assert logits.shape == (2, MAX_ASM_LEN, 50)

    def test_gradients_flow_through_pool(self, encoder):
        tokens = np.zeros((2, MAX_ASM_LEN), dtype=np.int64)
        tokens[:, :3] = 11
        encoder.zero_grad()
        encoder(tokens).sum().backward()
        grads = [p.grad for p in encoder.parameters() if p.grad is not None]
        assert grads
        assert all(np.isfinite(g).all() for g in grads)


class TestMaskTokens:
    def test_mask_distribution(self):
        from repro.pmm.pretrain import _mask_tokens

        rng = make_rng(3)
        batch = rng.integers(3, 50, size=(64, MAX_ASM_LEN))
        masked, positions, original = _mask_tokens(batch, rng, 50)
        rate = positions.mean()
        assert 0.10 < rate < 0.20  # ~15% masking
        # Unmasked positions are untouched.
        assert np.array_equal(masked[~positions], original[~positions])

    def test_pad_never_masked(self):
        from repro.pmm.pretrain import _mask_tokens

        rng = make_rng(4)
        batch = np.zeros((8, MAX_ASM_LEN), dtype=np.int64)  # all PAD
        masked, positions, _ = _mask_tokens(batch, rng, 50)
        assert not positions.any()
        assert (masked == PAD).all()
