"""CLI surface for PR 7: machine-readable cluster output, the chaos
gate's pinned exit-code contract, and the service client commands
(``serve``/``submit``/``status``/``cancel``) with golden stdout."""

import json
from pathlib import Path

import pytest

import repro.cli
from repro.cli import main
from repro.faults import FaultPlan
from repro.snowplow.campaign import ChaosCampaignResult

GOLDEN = Path(__file__).parent / "golden"


class _FakeCluster:
    """Just the two attributes the chaos report readers touch."""

    def __init__(self, final_edges, hub_timeline=()):
        self.final_edges = final_edges
        self.hub_timeline = list(hub_timeline)


def _fake_chaos_result(passing: bool) -> ChaosCampaignResult:
    signature = (("edges", 500),)
    return ChaosCampaignResult(
        kernel_version="6.8",
        horizon=1800.0,
        workers=2,
        shards=2,
        plan=FaultPlan(seed=7).with_worker_kill(1, 600.0),
        clean=_FakeCluster(500),
        chaos=_FakeCluster(480 if passing else 100),
        resume_signatures=(signature, signature),
        restarts=1,
        dropped_entries=0,
        shed=2,
        outstanding_lost=0 if passing else 3,
        peak_edges=480 if passing else 120,
    )


class TestChaosExitCode:
    """The gate contract, pinned: any invariant violation exits 1, a
    clean pass exits 0 — identically in text and ``--json`` modes."""

    ARGS = [
        "cluster", "chaos", "--size", "tiny", "--oracle",
        "--hours", "0.1", "--workers", "2", "--shards", "2",
    ]

    def _run(self, monkeypatch, passing, extra=()):
        monkeypatch.setattr(
            repro.cli, "run_chaos_campaign",
            lambda *args, **kwargs: _fake_chaos_result(passing),
        )
        return main(self.ARGS + list(extra))

    def test_pass_is_exit_zero(self, monkeypatch, capsys):
        assert self._run(monkeypatch, passing=True) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out

    def test_violation_is_exit_one(self, monkeypatch, capsys):
        assert self._run(monkeypatch, passing=False) == 1
        out = capsys.readouterr().out
        assert "verdict: FAIL" in out
        assert "[FAIL] zero corpus-entry loss" in out

    @pytest.mark.parametrize("passing,code", [(True, 0), (False, 1)])
    def test_json_mode_keeps_the_exit_code(
        self, monkeypatch, capsys, passing, code
    ):
        assert self._run(monkeypatch, passing, ["--json"]) == code
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is passing
        assert doc["invariants"]["zero_corpus_loss"] is passing
        assert doc["plan"]["windows"]


class TestClusterJson:
    def test_scaling_sweep_json(self, capsys):
        code = main([
            "cluster", "--size", "tiny", "--oracle",
            "--hours", "0.2", "--seed-corpus", "8",
            "--worker-counts", "1,2", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kernel"] == "6.8"
        assert [point["workers"] for point in doc["points"]] == [1, 2]
        for point in doc["points"]:
            assert point["final_edges"] > 0
            assert point["executions"] > 0
            assert len(point["worker_stats"]) == point["workers"]


class TestFuzzSmoke:
    def test_fuzz_workers_and_shards(self, capsys):
        code = main([
            "fuzz", "--size", "tiny", "--oracle",
            "--hours", "0.2", "--seed-corpus", "8",
            "--workers", "2", "--shards", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snowplow x2" in out
        assert "fleet edges" in out

    def test_observe_check_strict(self, tmp_path, capsys):
        directory = tmp_path / "telemetry"
        assert main([
            "fuzz", "--size", "tiny", "--oracle",
            "--hours", "0.2", "--seed-corpus", "8",
            "--observe-dir", str(directory),
        ]) == 0
        capsys.readouterr()
        metrics = str(directory / "metrics.json")
        assert main([
            "observe", "check", metrics, "--require", "fuzz.executions",
        ]) == 0
        capsys.readouterr()
        # --strict turns any SLO alert into exit 1; a healthy tiny run
        # under the fuzz pack stays clean, so the exit code is stable.
        code = main([
            "observe", "check", metrics, "--slo", "fuzz", "--strict",
        ])
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "expected series present" in out or "alert" in out


def _service_scenario(state_dir):
    """Two tenants on a two-slot fleet: the golden-report scenario."""
    common = [
        "--state-dir", str(state_dir), "--fleet-size", "2",
        "--time-slice", "300",
    ]
    assert main([
        "submit", *common, "--tenant", "alice", "--size", "tiny",
        "--hours", "0.2", "--seed", "3", "--seed-corpus", "8",
    ]) == 0
    assert main([
        "submit", *common, "--tenant", "bob", "--size", "tiny",
        "--hours", "0.2", "--seed", "9", "--seed-corpus", "8",
        "--priority", "5", "--budget-hours", "1.0",
    ]) == 0
    return common


class TestServiceCli:
    def test_submit_serve_status_golden(self, tmp_path, capsys):
        common = _service_scenario(tmp_path / "svc")
        out = capsys.readouterr().out
        assert out == (
            "submitted job-1 for tenant alice: oracle on kernel 6.8, "
            "0.2h x 1 worker(s) [queued]\n"
            "submitted job-2 for tenant bob: oracle on kernel 6.8, "
            "0.2h x 1 worker(s) [queued]\n"
        )
        assert main(["serve", *common[:2]]) == 0
        report = capsys.readouterr().out
        golden = GOLDEN / "service_health.txt"
        assert report == golden.read_text()

    def test_status_variants_and_json(self, tmp_path, capsys):
        common = _service_scenario(tmp_path / "svc")
        assert main(["serve", *common[:2]]) == 0
        capsys.readouterr()

        assert main(["status", *common[:2], "--campaign", "job-1"]) == 0
        assert capsys.readouterr().out == (
            "job-1 [alice] done: 100.0% of 0.2h\n"
        )
        assert main([
            "status", *common[:2], "--campaign", "job-1", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == 200
        assert doc["body"]["job"]["state"] == "done"

        assert main([
            "status", *common[:2], "--tenant", "bob", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["body"]["completed"] == 1
        assert doc["body"]["budget_remaining"] == pytest.approx(0.8)

        assert main([
            "status", *common[:2], "--campaign", "job-99",
        ]) == 1
        assert "404" in capsys.readouterr().err

    def test_cancel_and_exit_codes(self, tmp_path, capsys):
        common = _service_scenario(tmp_path / "svc")
        capsys.readouterr()
        assert main(["cancel", *common[:2], "--campaign", "job-2"]) == 0
        assert "cancelled" in capsys.readouterr().out
        assert main(["cancel", *common[:2], "--campaign", "job-99"]) == 1
        assert "404" in capsys.readouterr().err

    def test_status_without_state_is_exit_two(self, tmp_path, capsys):
        assert main([
            "status", "--state-dir", str(tmp_path / "nowhere"),
        ]) == 2
        assert "no service state" in capsys.readouterr().err

    def test_serve_report_out_and_resume(self, tmp_path, capsys):
        import shutil

        state_dir = tmp_path / "svc"
        _service_scenario(state_dir)
        # Stop mid-run, then resume from two independent copies of the
        # checkpoint: the service-level contract is that every restore
        # of the same bytes replays the remaining schedule identically.
        assert main(["serve", "--state-dir", str(state_dir),
                     "--until", "360"]) == 0
        capsys.readouterr()
        outputs = []
        for name in ("copy-a", "copy-b"):
            clone = tmp_path / name
            shutil.copytree(state_dir, clone)
            report_path = clone / "health.txt"
            assert main([
                "serve", "--state-dir", str(clone),
                "--report-out", str(report_path),
            ]) == 0
            out = capsys.readouterr().out
            report = report_path.read_text()
            assert out.startswith(report)
            outputs.append(report)
        assert outputs[0] == outputs[1]
        assert "done" in outputs[0]
