"""Tests for the Snowplow hybrid loop and campaign harness.

These use a tiny trained model (session fixture) so they exercise the
real plumbing end to end at unit-test cost.
"""

import numpy as np
import pytest

from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.rng import derive_seed, split
from repro.snowplow import (
    CampaignConfig,
    SnowplowConfig,
    format_fig6,
    format_table1,
    format_table2,
    format_table3,
    format_table5,
    run_coverage_campaign,
    run_crash_campaign,
    run_directed_campaign,
    train_pmm,
)
from repro.snowplow.campaign import (
    _build_snowplow_loop,
    default_directed_targets,
    known_crash_signatures,
)
from repro.syzlang import ProgramGenerator
from repro.vclock import CostModel


@pytest.fixture(scope="session")
def trained(kernel):
    return train_pmm(
        kernel,
        seed=0,
        corpus_size=25,
        dataset_config=DatasetConfig(mutations_per_test=30, seed=3),
        pmm_config=PMMConfig(
            dim=16, gnn_layers=2, asm_layers=1, asm_heads=2, seed=5
        ),
        train_config=TrainConfig(
            epochs=1, batch_size=8, max_examples_per_epoch=120,
            max_validation_examples=30,
        ),
    )


@pytest.fixture()
def tiny_config():
    return CampaignConfig(
        horizon=1800.0, runs=1, seed=11, seed_corpus_size=12,
        sample_interval=300.0,
    )


class TestTrainPmm:
    def test_returns_trained_bundle(self, trained):
        assert trained.model is not None
        assert trained.validation is not None
        assert 0.0 <= trained.validation.f1 <= 1.0
        assert trained.dataset.train

    def test_known_signatures(self, kernel):
        signatures = known_crash_signatures(kernel)
        assert signatures
        assert all(isinstance(s, str) for s in signatures)


class TestSnowplowLoop:
    def test_runs_and_uses_inference(self, kernel, trained, tiny_config):
        run_seed = derive_seed(tiny_config.seed, "t", 0)
        loop = _build_snowplow_loop(kernel, trained, run_seed, tiny_config)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "s")
        ).seed_corpus(10)
        loop.seed(seeds)
        stats = loop.run()
        assert stats.executions > 0
        assert loop.service.stats.submitted > 0
        assert loop.service.stats.completed > 0

    def test_stale_bursts_dropped(self, kernel, trained, tiny_config):
        from repro.snowplow.fuzzer import _Burst

        run_seed = derive_seed(tiny_config.seed, "t", 1)
        loop = _build_snowplow_loop(kernel, trained, run_seed, tiny_config)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "s")
        ).seed_corpus(5)
        loop.seed(seeds)
        program = loop.corpus.entries[0].program
        covered_block = next(iter(loop.accumulated.blocks))
        loop._bursts.append(
            _Burst(program=program, paths=[], remaining=4,
                   targets={covered_block})
        )
        assert loop._next_live_burst() is None
        assert not loop._bursts

    def test_live_burst_kept(self, kernel, trained, tiny_config):
        from repro.snowplow.fuzzer import _Burst

        run_seed = derive_seed(tiny_config.seed, "t", 2)
        loop = _build_snowplow_loop(kernel, trained, run_seed, tiny_config)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "s")
        ).seed_corpus(5)
        loop.seed(seeds)
        uncovered = next(
            block for block in kernel.blocks
            if block not in loop.accumulated.blocks
        )
        burst = _Burst(
            program=loop.corpus.entries[0].program, paths=[], remaining=4,
            targets={uncovered},
        )
        loop._bursts.append(burst)
        assert loop._next_live_burst() is burst

    def test_query_targets_fresh_only(self, kernel, trained, tiny_config):
        run_seed = derive_seed(tiny_config.seed, "t", 3)
        loop = _build_snowplow_loop(kernel, trained, run_seed, tiny_config)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "s")
        ).seed_corpus(8)
        loop.seed(seeds)
        entry = loop.corpus.entries[0]
        targets = loop._query_targets(entry.coverage)
        if targets is not None:
            assert not (targets & loop.accumulated.blocks)
            assert len(targets) <= loop.snowplow_config.max_targets

    def test_blocking_inference_slows_loop(self, kernel, trained):
        """Ablation: charging inference latency on the loop must reduce
        executions for the same horizon."""
        results = {}
        for label, cost in (
            ("async", CostModel()),
            ("blocking", CostModel().blocking_inference()),
        ):
            config = CampaignConfig(
                horizon=1200.0, runs=1, seed=13, seed_corpus_size=8,
                sample_interval=300.0, cost=cost,
            )
            run_seed = derive_seed(17, label)
            loop = _build_snowplow_loop(kernel, trained, run_seed, config)
            seeds = ProgramGenerator(
                kernel.table, split(run_seed, "s")
            ).seed_corpus(8)
            loop.seed(seeds)
            results[label] = loop.run().executions
        assert results["blocking"] < results["async"]


class TestCampaigns:
    def test_coverage_campaign_shapes(self, kernel, trained, tiny_config):
        result = run_coverage_campaign(kernel, trained, tiny_config)
        assert len(result.syzkaller_runs) == 1
        assert len(result.snowplow_runs) == 1
        assert result.syzkaller_final_mean > 0
        assert np.isfinite(result.coverage_improvement)
        text = format_fig6([result])
        assert "Snowplow" in text and "Syzkaller" in text

    def test_crash_campaign_tables(self, kernel, trained, tiny_config):
        result = run_crash_campaign(
            kernel, trained, tiny_config, reproduce=False
        )
        rows = result.table2_rows()
        assert len(rows["snowplow_new"]) == 1
        table = format_table2(result)
        assert "New Crashes" in table
        table3 = format_table3(result.unique_new_crashes())
        assert "Total" in table3

    def test_directed_campaign(self, kernel, trained):
        config = CampaignConfig(
            horizon=900.0, runs=1, seed=5, seed_corpus_size=8,
        )
        targets = default_directed_targets(kernel, count=2)
        results = run_directed_campaign(kernel, trained, targets, config)
        assert set(results) == set(targets)
        for modes in results.values():
            assert set(modes) == {"syzdirect", "snowplow_d"}
        table = format_table5(results, kernel.version)
        assert "SyzDirect" in table

    def test_directed_targets_mix(self, kernel):
        targets = default_directed_targets(kernel, count=6)
        assert len(targets) == 6
        assert len(set(targets)) == 6
        assert all(t in kernel.blocks for t in targets)

    def test_table1_format(self, trained):
        from repro.pmm.metrics import evaluate_selector

        baseline = evaluate_selector([{1}], [{2}])
        text = format_table1(trained.validation, baseline, "Rand.8")
        assert "PMModel" in text and "Rand.8" in text
