"""Tests for random program generation."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.rng import make_rng
from repro.syzlang import ProgramGenerator, build_standard_table
from repro.syzlang.generator import GeneratorConfig
from repro.syzlang.program import IntValue, ResourceValue
from repro.syzlang.types import IntType


@pytest.fixture(scope="module")
def table():
    return build_standard_table("6.8")


class TestRandomProgram:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_generated_programs_validate(self, table, seed):
        generator = ProgramGenerator(table, make_rng(seed))
        program = generator.random_program()
        program.validate(table)

    def test_deterministic_given_seed(self, table):
        from repro.syzlang import serialize_program

        a = ProgramGenerator(table, make_rng(5)).random_program()
        b = ProgramGenerator(table, make_rng(5)).random_program()
        assert serialize_program(a) == serialize_program(b)

    def test_length_bounds(self, table):
        config = GeneratorConfig(min_calls=2, max_calls=4)
        generator = ProgramGenerator(table, make_rng(0), config)
        for _ in range(20):
            program = generator.random_program()
            # Producers may be prepended, so only the lower bound holds
            # strictly; the upper bound is lower + producers.
            assert len(program) >= 2

    def test_explicit_length(self, table):
        generator = ProgramGenerator(table, make_rng(1))
        program = generator.random_program(length=1)
        assert len(program) >= 1

    def test_resources_mostly_wired(self, table):
        generator = ProgramGenerator(table, make_rng(2))
        wired = null = 0
        for _ in range(60):
            program = generator.random_program()
            for _, value in program.walk():
                if isinstance(value, ResourceValue):
                    if value.producer is None:
                        null += 1
                    else:
                        wired += 1
        assert wired > null  # resource-aware generation dominates

    def test_seed_corpus_size(self, table):
        generator = ProgramGenerator(table, make_rng(3))
        corpus = generator.seed_corpus(7)
        assert len(corpus) == 7


class TestRandomValues:
    def test_int_respects_range(self, table):
        generator = ProgramGenerator(table, make_rng(4))
        ty = IntType(bits=32, minimum=10, maximum=20)
        for _ in range(100):
            value = generator.random_value(ty, {})
            assert isinstance(value, IntValue)
            assert 10 <= value.value <= 20

    def test_int_alignment(self, table):
        generator = ProgramGenerator(table, make_rng(5))
        ty = IntType(bits=64, minimum=0, maximum=1 << 20, align=4096)
        for _ in range(50):
            value = generator.random_value(ty, {})
            assert value.value % 4096 == 0

    def test_interesting_values_sampled(self, table):
        generator = ProgramGenerator(table, make_rng(6))
        ty = IntType(bits=32, minimum=0, maximum=1 << 30,
                     interesting=(77777,))
        hits = sum(
            generator.random_value(ty, {}).value == 77777 for _ in range(300)
        )
        assert hits > 20  # ~25% expected

    def test_len_fields_consistent_after_generation(self, table):
        generator = ProgramGenerator(table, make_rng(7))
        for _ in range(20):
            program = generator.random_program()
            clone = program.clone()
            clone.resolve_len_fields()
            from repro.syzlang import serialize_program

            assert serialize_program(clone) == serialize_program(program)
