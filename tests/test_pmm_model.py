"""Tests for the PMM model: forward, loss, prediction, learnability."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.graphs import AsmVocab, GraphEncoder, build_query_graph
from repro.kernel import Executor
from repro.pmm import PMM, PMMConfig
from repro.pmm.asm_encoder import AsmEncoder
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator


@pytest.fixture(scope="module")
def encoder_setup(kernel):
    vocab = AsmVocab.build(kernel)
    encoder = GraphEncoder(vocab, kernel.table)
    return vocab, encoder


@pytest.fixture(scope="module")
def model(kernel, encoder_setup):
    vocab, encoder = encoder_setup
    return PMM(
        len(vocab), encoder.num_syscalls,
        PMMConfig(dim=16, gnn_layers=2, asm_layers=1, asm_heads=2, seed=1),
    )


def encode_query(kernel, encoder, seed=0, labels=None):
    generator = ProgramGenerator(kernel.table, make_rng(seed))
    executor = Executor(kernel)
    program = generator.random_program()
    coverage = executor.run(program).coverage
    frontier = sorted(kernel.frontier(coverage.blocks))
    targets = set(frontier[:3])
    graph = build_query_graph(program, coverage, kernel, targets)
    if labels == "first-site":
        labels = {program.mutation_sites()[0]: True}
    return program, encoder.encode(graph, labels=labels)


class TestForward:
    def test_logit_count_matches_mutable_args(
        self, kernel, encoder_setup, model
    ):
        _, encoder = encoder_setup
        program, encoded = encode_query(kernel, encoder)
        logits = model.forward(encoded)
        assert logits.shape == (int(encoded.arg_mask.sum()),)

    def test_forward_deterministic(self, kernel, encoder_setup, model):
        _, encoder = encoder_setup
        _, encoded = encode_query(kernel, encoder)
        a = model.forward(encoded).data
        b = model.forward(encoded).data
        assert np.allclose(a, b)

    def test_predict_paths_never_empty(self, kernel, encoder_setup, model):
        _, encoder = encoder_setup
        program, encoded = encode_query(kernel, encoder)
        paths = model.predict_paths(encoded, threshold=0.999999)
        assert len(paths) >= 1  # argmax fallback

    def test_predicted_paths_are_sites(self, kernel, encoder_setup, model):
        _, encoder = encoder_setup
        program, encoded = encode_query(kernel, encoder)
        predicted = model.predict_paths(encoded, threshold=0.0)
        assert set(predicted) <= set(program.mutation_sites())

    def test_loss_requires_labels(self, kernel, encoder_setup, model):
        _, encoder = encoder_setup
        _, encoded = encode_query(kernel, encoder)
        with pytest.raises(ModelError):
            model.loss(encoded)

    def test_loss_finite(self, kernel, encoder_setup, model):
        _, encoder = encoder_setup
        _, encoded = encode_query(kernel, encoder, labels="first-site")
        loss = model.loss(encoded)
        assert np.isfinite(loss.item())

    def test_gradients_reach_all_components(
        self, kernel, encoder_setup, model
    ):
        _, encoder = encoder_setup
        _, encoded = encode_query(kernel, encoder, labels="first-site")
        model.zero_grad()
        model.loss(encoded).backward()
        with_grad = sum(
            1 for p in model.parameters() if p.grad is not None
        )
        # Every component should participate except possibly unused
        # relation weights.
        assert with_grad > 0.5 * len(model.parameters())


class TestWeightTying:
    def test_slot_vectors_use_asm_token_table(self, kernel, encoder_setup):
        vocab, encoder = encoder_setup
        model = PMM(len(vocab), encoder.num_syscalls,
                    PMMConfig(dim=16, asm_layers=1, asm_heads=2, seed=2))
        slots = np.array([1, 5])
        vecs = model._slot_vectors(slots).data
        table = model.asm_encoder.token_embedding.table.data
        # stored slot s maps to vocab row s + 2 (off_<s-1> at 3+(s-1)).
        assert np.allclose(vecs[0], table[3])
        assert np.allclose(vecs[1], table[7])

    def test_dim_mismatch_rejected(self, kernel, encoder_setup):
        vocab, encoder = encoder_setup
        wrong = AsmEncoder(len(vocab), dim=8, heads=2, layers=1,
                           rng=make_rng(0))
        with pytest.raises(ModelError):
            PMM(len(vocab), encoder.num_syscalls,
                PMMConfig(dim=16), asm_encoder=wrong)


class TestLearnability:
    def test_overfits_single_example(self, kernel, encoder_setup):
        """Sanity: the model can drive loss near zero on one example."""
        from repro.nn.optim import Adam

        vocab, encoder = encoder_setup
        model = PMM(len(vocab), encoder.num_syscalls,
                    PMMConfig(dim=16, gnn_layers=2, asm_layers=1,
                              asm_heads=2, seed=3))
        _, encoded = encode_query(kernel, encoder, labels="first-site")
        optimizer = Adam(model.parameters(), lr=5e-3)
        first = model.loss(encoded).item()
        for _ in range(30):
            optimizer.zero_grad()
            loss = model.loss(encoded)
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.25

    def test_target_marker_changes_prediction(
        self, kernel, encoder_setup, model
    ):
        """Moving the target must be able to change the logits: the
        query is target-conditioned."""
        _, encoder = encoder_setup
        generator = ProgramGenerator(kernel.table, make_rng(7))
        executor = Executor(kernel)
        program = generator.random_program()
        coverage = executor.run(program).coverage
        frontier = sorted(kernel.frontier(coverage.blocks))
        # The seeded program is chosen so its frontier always has at
        # least two targets; a shrink here is a real regression, not a
        # reason to skip.
        assert len(frontier) >= 2
        graph_a = build_query_graph(program, coverage, kernel, {frontier[0]})
        graph_b = build_query_graph(program, coverage, kernel, {frontier[-1]})
        logits_a = model.forward(encoder.encode(graph_a)).data
        logits_b = model.forward(encoder.encode(graph_b)).data
        assert not np.allclose(logits_a, logits_b)


class TestPretraining:
    def test_masked_lm_reduces_loss(self, kernel, encoder_setup):
        from repro.pmm.pretrain import PretrainConfig, masked_lm_pretrain

        vocab, _ = encoder_setup
        encoder = AsmEncoder(len(vocab), dim=16, heads=2, layers=1,
                             rng=make_rng(4))
        losses = masked_lm_pretrain(
            encoder, kernel, vocab,
            PretrainConfig(steps=40, batch_size=16, seed=5),
        )
        assert len(losses) > 10
        first = np.mean(losses[:5])
        last = np.mean(losses[-5:])
        assert last < first
