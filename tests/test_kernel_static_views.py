"""Property tests on the kernel's static-analysis views."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kernel import Executor
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator


class TestStaticViews:
    def test_guarding_condition_of_alternatives(self, kernel):
        """Every frontier block of an execution has a conditional
        predecessor (by construction: frontiers come from branches)."""
        generator = ProgramGenerator(kernel.table, make_rng(90))
        executor = Executor(kernel)
        checked = 0
        for _ in range(5):
            coverage = executor.run(generator.random_program()).coverage
            for block in kernel.frontier(coverage.blocks):
                assert kernel.guarding_condition(block) is not None
                checked += 1
        assert checked > 0

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 10_000))
    def test_frontier_disjoint_from_coverage(self, kernel, seed):
        generator = ProgramGenerator(kernel.table, make_rng(seed))
        executor = Executor(kernel)
        coverage = executor.run(generator.random_program()).coverage
        frontier = kernel.frontier(coverage.blocks)
        assert not (frontier & coverage.blocks)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 10_000))
    def test_frontier_reachable_in_one_hop(self, kernel, seed):
        generator = ProgramGenerator(kernel.table, make_rng(seed))
        executor = Executor(kernel)
        coverage = executor.run(generator.random_program()).coverage
        frontier = kernel.frontier(coverage.blocks)
        one_hop = set()
        for block in coverage.blocks:
            one_hop.update(kernel.succs.get(block, ()))
        assert frontier <= one_hop

    def test_distance_from_matches_distance_to(self, kernel):
        """Forward distance from {entry} agrees with reverse distance to
        a fixed target, for blocks on shortest entry paths."""
        name = sorted(kernel.handlers)[0]
        cfg = kernel.handlers[name]
        exits = cfg.exits()
        forward = kernel.distance_from({cfg.entry})
        backward = kernel.distance_to(exits[0])
        # Triangle inequality: entry->exit length is bounded by any
        # intermediate split.
        if exits[0] in forward and cfg.entry in backward:
            direct = forward[exits[0]]
            assert direct <= backward[cfg.entry] + forward[cfg.entry]

    def test_distance_maps_nonnegative(self, kernel):
        name = sorted(kernel.handlers)[0]
        cfg = kernel.handlers[name]
        for distance in kernel.distance_to(cfg.exits()[0]).values():
            assert distance >= 0
