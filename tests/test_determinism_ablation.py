"""The §3.1 determinism-controls ablation as tests.

The paper eliminates three noise sources during data collection:
VM-snapshot resets, concurrent execution, and RPC-triggered interrupt
coverage.  The executor models the last one with its ``noise`` knob;
these tests quantify that noisy collection corrupts labels.
"""

import numpy as np

from repro.kernel import Executor
from repro.pmm.dataset import DatasetConfig, harvest_mutations
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator


class TestNoiseInjection:
    def test_noise_adds_phantom_new_coverage(self, kernel):
        """With interrupt noise, re-running the same base test reports
        spurious "new" blocks — exactly the label noise §3.1 eliminates."""
        generator = ProgramGenerator(kernel.table, make_rng(0))
        program = generator.random_program(length=6)
        clean = Executor(kernel).run(program).coverage
        noisy_executor = Executor(kernel, noise=0.5, seed=7)
        phantom = 0
        for _ in range(20):
            noisy = noisy_executor.run(program).coverage
            phantom += len(noisy.blocks - clean.blocks)
        assert phantom > 0

    def test_clean_harvest_labels_are_stable(self, kernel):
        """Deterministic collection: the same pipeline twice gives the
        same samples."""
        def harvest(seed):
            generator = ProgramGenerator(kernel.table, make_rng(1))
            executor = Executor(kernel)
            corpus = generator.seed_corpus(6)
            return harvest_mutations(
                kernel, executor, generator, corpus,
                DatasetConfig(mutations_per_test=25, seed=seed),
            )

        a, b = harvest(5), harvest(5)
        assert [s.mutated_paths for s in a.samples] == [
            s.mutated_paths for s in b.samples
        ]

    def test_noisy_harvest_has_higher_sample_rate(self, kernel):
        """Noise inflates the successful-mutation count with phantom
        samples (interrupt blocks counted as new coverage)."""
        def harvest(noise):
            generator = ProgramGenerator(kernel.table, make_rng(2))
            executor = Executor(kernel, noise=noise, seed=11)
            corpus = generator.seed_corpus(8)
            return harvest_mutations(
                kernel, executor, generator, corpus,
                DatasetConfig(mutations_per_test=30, seed=6),
            )

        clean = harvest(0.0)
        noisy = harvest(0.6)
        clean_rate = len(clean.samples) / max(len(clean.programs), 1)
        noisy_rate = len(noisy.samples) / max(len(noisy.programs), 1)
        assert noisy_rate > clean_rate

    def test_phantom_labels_reference_interrupt_blocks(self, kernel):
        generator = ProgramGenerator(kernel.table, make_rng(3))
        executor = Executor(kernel, noise=0.8, seed=13)
        corpus = generator.seed_corpus(8)
        dataset = harvest_mutations(
            kernel, executor, generator, corpus,
            DatasetConfig(mutations_per_test=25, seed=8),
        )
        irq = set(kernel.interrupt_trace)
        polluted = sum(
            1 for sample in dataset.samples if sample.new_blocks & irq
        )
        assert polluted > 0
