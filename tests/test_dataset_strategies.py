"""Tests for the §3.1 target-construction strategies."""

import pytest

from repro.errors import DatasetError
from repro.kernel import Executor
from repro.pmm.dataset import DatasetConfig, harvest_mutations
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator


def harvest(kernel, strategy, seed=77):
    generator = ProgramGenerator(kernel.table, make_rng(seed))
    executor = Executor(kernel)
    corpus = generator.seed_corpus(10)
    return harvest_mutations(
        kernel, executor, generator, corpus,
        DatasetConfig(
            mutations_per_test=25, seed=seed, target_strategy=strategy
        ),
    )


class TestTargetStrategies:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(DatasetError):
            DatasetConfig(target_strategy="telepathic")

    def test_exact_strategy_one_example_per_sample(self, kernel):
        dataset = harvest(kernel, "exact")
        total = (
            len(dataset.train)
            + len(dataset.validation)
            + len(dataset.evaluation)
        )
        # One example per sample, minus any dropped by the popularity cap.
        assert 0 < total <= len(dataset.samples)

    def test_exact_targets_are_new_coverage(self, kernel):
        dataset = harvest(kernel, "exact")
        by_targets = {
            sample.new_blocks: sample for sample in dataset.samples
        }
        for example in dataset.train[:30]:
            assert example.targets in by_targets
            sample = by_targets[example.targets]
            assert example.labels == sample.mutated_paths

    def test_noisy_strategy_targets_are_frontier_subsets(self, kernel):
        dataset = harvest(kernel, "noisy")
        for example in dataset.train[:30]:
            coverage = dataset.coverages[example.base_index]
            frontier = kernel.frontier(coverage.blocks)
            assert example.targets <= frontier

    def test_noisy_produces_more_examples_than_exact(self, kernel):
        noisy = harvest(kernel, "noisy")
        exact = harvest(kernel, "exact")
        noisy_total = len(noisy.train) + len(noisy.validation) + len(
            noisy.evaluation
        )
        exact_total = len(exact.train) + len(exact.validation) + len(
            exact.evaluation
        )
        # Option (c) yields up to 5 examples per sample.
        assert noisy_total > exact_total
