"""Smoke tests: the example scripts' building blocks stay runnable.

Full example runs take minutes; these tests exercise their helper
functions and a truncated version of each main path.
"""

import pytest

from repro.kernel import Executor


class TestCrashHuntingExample:
    def test_ata_reproducer_builds_and_crashes(self, kernel):
        import examples.crash_hunting as example

        program = example.ata_reproducer(kernel)
        program.validate(kernel.table)
        result = Executor(kernel, seed=1).run(program)
        assert result.crashed
        assert result.crash.bug.bug_id == "ata-oob"


class TestServingExample:
    def test_pool_sweep_runs(self, capsys):
        import examples.inference_serving as example

        example.sweep_pool_sizes()
        output = capsys.readouterr().out
        assert "q/s" in output
        assert "57" in output  # the paper reference line


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "module",
        [
            "examples.quickstart",
            "examples.crash_hunting",
            "examples.directed_fuzzing",
            "examples.train_and_evaluate_pmm",
            "examples.inference_serving",
            "examples.cluster_campaign",
        ],
    )
    def test_importable_with_main(self, module):
        imported = __import__(module, fromlist=["main"])
        assert callable(imported.main)
