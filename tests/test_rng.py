"""Tests for deterministic RNG utilities."""

import numpy as np
import pytest

from repro.rng import choice_weighted, derive_seed, make_rng, split


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 2**40)
        b = make_rng(2).integers(0, 2**40)
        assert a != b


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_label_order_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) must differ from ("a", "b").
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    def test_int_and_str_labels(self):
        assert derive_seed(7, 1) == derive_seed(7, "1")

    def test_range(self):
        for label in range(50):
            seed = derive_seed(0, label)
            assert 0 <= seed < 2**63


class TestSplit:
    def test_split_independent(self):
        a = split(0, "x")
        b = split(0, "y")
        draws_a = a.integers(0, 100, size=20)
        draws_b = b.integers(0, 100, size=20)
        assert not np.array_equal(draws_a, draws_b)

    def test_split_reproducible(self):
        assert split(3, "k").random() == split(3, "k").random()


class TestChoiceWeighted:
    def test_respects_zero_weights(self):
        rng = make_rng(0)
        items = ["a", "b", "c"]
        for _ in range(50):
            assert choice_weighted(rng, items, [0.0, 1.0, 0.0]) == "b"

    def test_empty_items_raises(self):
        with pytest.raises(ValueError):
            choice_weighted(make_rng(0), [], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            choice_weighted(make_rng(0), ["a"], [1.0, 2.0])

    def test_all_zero_weights_uniform_fallback(self):
        rng = make_rng(0)
        seen = {choice_weighted(rng, ["a", "b"], [0.0, 0.0]) for _ in range(50)}
        assert seen == {"a", "b"}

    def test_distribution_roughly_proportional(self):
        rng = make_rng(1)
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[choice_weighted(rng, ["a", "b"], [3.0, 1.0])] += 1
        ratio = counts["a"] / counts["b"]
        assert 2.0 < ratio < 4.5
