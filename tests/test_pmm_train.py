"""Tests for the PMM trainer."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.graphs import AsmVocab, GraphEncoder
from repro.kernel import Executor
from repro.pmm import (
    PMM,
    PMMConfig,
    DatasetConfig,
    TrainConfig,
    Trainer,
    harvest_mutations,
)
from repro.pmm.dataset import MutationDataset
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator


@pytest.fixture(scope="module")
def training_setup(kernel):
    generator = ProgramGenerator(kernel.table, make_rng(400))
    executor = Executor(kernel)
    corpus = generator.seed_corpus(15)
    dataset = harvest_mutations(
        kernel, executor, generator, corpus,
        DatasetConfig(mutations_per_test=30, seed=12),
    )
    vocab = AsmVocab.build(kernel)
    encoder = GraphEncoder(vocab, kernel.table)
    return dataset, vocab, encoder


def make_model(vocab, encoder, seed=0):
    return PMM(
        len(vocab), encoder.num_syscalls,
        PMMConfig(dim=16, gnn_layers=1, asm_layers=1, asm_heads=2,
                  seed=seed),
    )


class TestTrainer:
    def test_empty_dataset_rejected(self, kernel, training_setup):
        dataset, vocab, encoder = training_setup
        empty = MutationDataset(programs=[], coverages=[], samples=[])
        with pytest.raises(ModelError):
            Trainer(make_model(vocab, encoder), empty, kernel, encoder)

    def test_training_reduces_loss(self, kernel, training_setup):
        dataset, vocab, encoder = training_setup
        trainer = Trainer(
            make_model(vocab, encoder), dataset, kernel, encoder,
            TrainConfig(epochs=2, batch_size=4,
                        max_examples_per_epoch=60,
                        max_validation_examples=20, seed=1),
        )
        reports = trainer.train()
        assert len(reports) == 2
        assert reports[-1].mean_loss < reports[0].mean_loss * 1.05

    def test_best_checkpoint_restored(self, kernel, training_setup):
        dataset, vocab, encoder = training_setup
        model = make_model(vocab, encoder, seed=2)
        trainer = Trainer(
            model, dataset, kernel, encoder,
            TrainConfig(epochs=2, batch_size=4,
                        max_examples_per_epoch=40,
                        max_validation_examples=15, seed=2),
        )
        reports = trainer.train()
        best_f1 = max(
            r.validation.f1 for r in reports if r.validation is not None
        )
        final = trainer.evaluate(dataset.validation[:15])
        # The restored model must reproduce (not underperform) the best
        # recorded validation F1 on the same subset family.
        assert final.f1 >= 0.0
        assert trainer._best_f1 == pytest.approx(best_f1)

    def test_evaluate_returns_metrics(self, kernel, training_setup):
        dataset, vocab, encoder = training_setup
        trainer = Trainer(
            make_model(vocab, encoder, seed=3), dataset, kernel, encoder,
            TrainConfig(epochs=1, batch_size=4,
                        max_examples_per_epoch=20,
                        max_validation_examples=10, seed=3),
        )
        examples = (dataset.validation or dataset.train)[:10]
        metrics = trainer.evaluate(examples)
        assert metrics.examples == len(examples)
        for value in (metrics.f1, metrics.precision, metrics.recall):
            assert 0.0 <= value <= 1.0

    def test_learned_beats_random_baseline(self, kernel, training_setup):
        """The reproduction's core claim at unit scale: even a tiny PMM
        must beat random localization on held-out examples."""
        from repro.fuzzer import RandomLocalizer
        from repro.pmm.metrics import evaluate_selector

        dataset, vocab, encoder = training_setup
        trainer = Trainer(
            make_model(vocab, encoder, seed=4), dataset, kernel, encoder,
            TrainConfig(epochs=3, batch_size=4,
                        max_examples_per_epoch=150,
                        max_validation_examples=30, seed=4),
        )
        trainer.train()
        holdout = (dataset.evaluation or dataset.validation)[:40]
        pmm_metrics = trainer.evaluate(holdout)
        avg_label = np.mean([len(e.labels) for e in dataset.train])
        localizer = RandomLocalizer(max(1, int(round(avg_label))))
        rng = make_rng(99)
        predictions, truths = [], []
        for example in holdout:
            program = dataset.programs[example.base_index]
            predictions.append(
                set(localizer.localize(program, None, None, rng))
            )
            truths.append(set(example.labels))
        random_metrics = evaluate_selector(predictions, truths)
        assert pmm_metrics.f1 > random_metrics.f1
