"""Tests for the yield-accounting probe."""

from repro.fuzzer import CrashTriage, MutationEngine, SyzkallerLocalizer
from repro.fuzzer.engine import TypeSelector
from repro.fuzzer.stats import MutationYield, YieldProbe
from repro.fuzzer.loop import FuzzLoop
from repro.kernel import Executor
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator
from repro.vclock import CostModel, VirtualClock


class TestMutationYield:
    def test_rates(self):
        y = MutationYield(mutations=10, new_edges=5, productive=2)
        assert y.edges_per_mutation == 0.5
        assert y.hit_rate == 0.2

    def test_zero_division_safe(self):
        y = MutationYield()
        assert y.edges_per_mutation == 0.0
        assert y.hit_rate == 0.0


class TestYieldProbe:
    def _loop(self, kernel, horizon=400.0):
        generator = ProgramGenerator(kernel.table, make_rng(0))
        executor = Executor(kernel)
        engine = MutationEngine(
            TypeSelector(), SyzkallerLocalizer(k=1), generator, make_rng(1)
        )
        loop = FuzzLoop(
            kernel, engine, executor, CrashTriage(executor, set()),
            VirtualClock(horizon=horizon), CostModel(), make_rng(2),
        )
        loop.seed(generator.seed_corpus(8))
        return loop

    def test_accounts_every_mutation(self, kernel):
        loop = self._loop(kernel)
        probe = YieldProbe.attach(loop)
        stats = loop.run()
        total = sum(y.mutations for y in probe.yields.values())
        assert total == sum(stats.mutations.values())

    def test_edges_attributed_consistently(self, kernel):
        loop = self._loop(kernel, horizon=800.0)
        probe = YieldProbe.attach(loop)
        seed_edges = len(loop.accumulated.edges)
        stats = loop.run()
        gained = stats.final_edges - seed_edges
        attributed = sum(y.new_edges for y in probe.yields.values())
        assert attributed == gained

    def test_report_renders(self, kernel):
        loop = self._loop(kernel)
        probe = YieldProbe.attach(loop)
        loop.run()
        report = probe.report()
        assert "edges/mut" in report
        assert "argument_mutation" in report
