"""Cross-version structural tests: the generalization substrate.

Fig. 6b/6c rest on later releases sharing most code with the training
release while adding new interfaces.  These tests pin the properties the
builder must provide for that experiment to be meaningful.
"""

import numpy as np
import pytest

from repro.kernel import Executor, build_kernel
from repro.kernel.blocks import BlockRole
from repro.kernel.conditions import ArgCondition
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator
from repro.syzlang.slots import slot_token


@pytest.fixture(scope="module")
def releases():
    return {
        version: build_kernel(version, seed=1, size="small")
        for version in ("6.8", "6.9", "6.10")
    }


class TestSharedStructure:
    def test_condition_slots_stable_across_versions(self, releases):
        """The slot token of a given (syscall, path) condition is
        version-independent — the property PMM's generalization uses."""
        v68, v610 = releases["6.8"], releases["6.10"]
        checked = 0
        for name, cfg in v68.handlers.items():
            other = v610.handlers.get(name)
            if other is None:
                continue
            conds_a = {
                (c.condition.syscall, c.condition.path_elements)
                for c in cfg.blocks.values()
                if c.role is BlockRole.CONDITION
                and isinstance(c.condition, ArgCondition)
            }
            conds_b = {
                (c.condition.syscall, c.condition.path_elements)
                for c in other.blocks.values()
                if c.role is BlockRole.CONDITION
                and isinstance(c.condition, ArgCondition)
            }
            for syscall, path in conds_a & conds_b:
                assert slot_token(syscall, path) == slot_token(syscall, path)
                checked += 1
        assert checked > 20

    def test_shared_programs_execute_on_all_releases(self, releases):
        """6.8 programs run unchanged on 6.9/6.10 (API is backward
        compatible)."""
        generator = ProgramGenerator(releases["6.8"].table, make_rng(0))
        programs = generator.seed_corpus(10)
        for version in ("6.9", "6.10"):
            executor = Executor(releases[version])
            for program in programs:
                result = executor.run(program)
                assert result.coverage.blocks

    def test_perturbation_bounded(self, releases):
        """Only a minority of shared handlers change across releases."""
        v68, v69 = releases["6.8"], releases["6.9"]
        changed = total = 0
        for name, cfg in v68.handlers.items():
            other = v69.handlers.get(name)
            if other is None:
                continue
            total += 1
            if sorted(b.asm for b in cfg.blocks.values()) != sorted(
                b.asm for b in other.blocks.values()
            ):
                changed += 1
        assert total > 0
        assert changed / total < 0.4

    def test_new_interfaces_have_new_coverage(self, releases):
        """The 6.10-only rxrpc interface contributes blocks 6.8 lacks."""
        v610 = releases["6.10"]
        rxrpc_blocks = v610.blocks_of_subsystem("rxrpc")
        assert rxrpc_blocks
        assert not releases["6.8"].blocks_of_subsystem("rxrpc")

    def test_bugs_planted_in_every_release(self, releases):
        for kernel in releases.values():
            assert "ata-oob" in kernel.bug_blocks


class TestCrossVersionPredictions:
    def test_trained_68_predicts_sensibly_on_610(self, releases):
        """A 6.8-trained toy PMM applied to 6.10 programs must pick
        argument paths of the program it is given (no index leakage)."""
        from repro.graphs import AsmVocab, GraphEncoder, build_query_graph
        from repro.pmm import PMM, PMMConfig

        v68, v610 = releases["6.8"], releases["6.10"]
        vocab = AsmVocab.build(v68)
        encoder = GraphEncoder(vocab, v68.table)
        model = PMM(
            len(vocab), encoder.num_syscalls,
            PMMConfig(dim=16, gnn_layers=1, asm_layers=1, asm_heads=2),
        )
        generator = ProgramGenerator(v610.table, make_rng(9))
        executor = Executor(v610)
        for _ in range(3):
            program = generator.random_program()
            coverage = executor.run(program).coverage
            frontier = sorted(v610.frontier(coverage.blocks))[:5]
            graph = build_query_graph(
                program, coverage, v610, set(frontier)
            )
            encoded = encoder.encode(graph)
            predicted = model.predict_paths(encoded)
            assert set(predicted) <= set(program.mutation_sites())
