"""Tests for repro.cluster: the hub, the scheduler, shared serving,
stats merging, and — the property everything else leans on — bit
reproducibility of multi-worker campaigns, including after a mid-run
kill + checkpoint resume."""

import json

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterScheduler,
    ClusterWorker,
    CorpusHub,
    ShardedHub,
    SharedInferenceTier,
)
from repro.faults import FaultInjector, FaultPlan
from repro.fuzzer.corpus import CorpusEntry
from repro.fuzzer.loop import FuzzObservation, FuzzStats
from repro.kernel.coverage import Coverage
from repro.pmm.serve import InferenceService
from repro.rng import derive_seed, split
from repro.snowplow import (
    CampaignConfig,
    build_cluster,
    chaos_plan,
    cluster_state,
    format_chaos,
    format_scaling,
    restore_cluster_state,
    run_chaos_campaign,
    run_scaling_campaign,
)
from repro.snowplow.checkpointing import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.syzlang.generator import ProgramGenerator


def _entry(program, traces, signal=1, hints=frozenset()):
    return CorpusEntry(
        program=program, coverage=Coverage.from_traces(traces),
        signal=signal, hints=hints,
    )


@pytest.fixture()
def programs(kernel):
    return ProgramGenerator(kernel.table, split(3, "hub")).seed_corpus(6)


def _cluster_config(workers):
    return ClusterConfig(workers=workers, sync_interval=300.0)


def _campaign_config(seed=11, horizon=2400.0):
    return CampaignConfig(
        horizon=horizon, runs=1, seed=seed, seed_corpus_size=12,
        sample_interval=300.0,
    )


def _oracle_cluster(kernel, workers, seed=11, horizon=2400.0):
    config = _campaign_config(seed=seed, horizon=horizon)
    run_seed = derive_seed(config.seed, "cluster-test", kernel.version)
    return build_cluster(
        kernel, None, run_seed, config,
        cluster_config=_cluster_config(workers), oracle=True,
    )


def _result_signature(result):
    return (
        result.final_edges,
        result.final_blocks,
        result.merged.executions,
        result.merged.mutations,
        tuple(
            (
                stats.final_edges, stats.executions, stats.hub_syncs,
                stats.hub_pushed, stats.hub_pulled, stats.corpus_size,
            )
            for stats in result.worker_stats
        ),
        tuple(
            (obs.time, obs.edges, obs.blocks, obs.executions)
            for obs in result.merged.observations
        ),
        tuple(
            (obs.time, obs.edges) for obs in result.hub_timeline
        ),
    )


class TestCorpusHub:
    def test_push_accepts_new_coverage(self, programs):
        hub = CorpusHub()
        accepted = hub.push(0, [_entry(programs[0], [[1, 2, 3]])], now=10.0)
        assert accepted == 1
        assert hub.epoch == 1
        assert len(hub.coverage.edges) == 2

    def test_push_dedups_by_signature(self, programs):
        hub = CorpusHub()
        hub.push(0, [_entry(programs[0], [[1, 2, 3]])], now=10.0)
        accepted = hub.push(1, [_entry(programs[1], [[1, 2, 3]])], now=20.0)
        assert accepted == 0
        assert hub.stats.duplicates == 1

    def test_push_rejects_subsumed_coverage(self, programs):
        hub = CorpusHub()
        hub.push(0, [_entry(programs[0], [[1, 2, 3]])], now=10.0)
        # Different signature but no new edge for the union.
        accepted = hub.push(1, [_entry(programs[1], [[1, 2]])], now=20.0)
        assert accepted == 0

    def test_pull_is_incremental_and_excludes_own(self, programs):
        hub = CorpusHub()
        hub.push(0, [_entry(programs[0], [[1, 2]])], now=10.0)
        hub.push(1, [_entry(programs[1], [[3, 4]])], now=20.0)
        pulled, epoch = hub.pull(0, since_epoch=0)
        assert [entry.origin for entry in pulled] == [1]
        assert epoch == hub.epoch
        # Nothing new since: an incremental pull is empty.
        pulled, _ = hub.pull(0, since_epoch=epoch)
        assert pulled == []

    def test_timeline_tracks_union_growth(self, programs):
        hub = CorpusHub()
        hub.push(0, [_entry(programs[0], [[1, 2]])], now=10.0)
        hub.push(1, [_entry(programs[1], [[3, 4]])], now=25.0)
        assert [(obs.time, obs.edges) for obs in hub.timeline] == [
            (10.0, 1), (25.0, 2),
        ]

    def test_state_roundtrip(self, kernel, programs):
        hub = CorpusHub()
        hub.push(0, [_entry(programs[0], [[1, 2, 3]])], now=10.0)
        hub.push(1, [_entry(programs[1], [[4, 5]])], now=20.0)
        state = json.loads(json.dumps(hub.state_dict()))
        restored = CorpusHub()
        restored.restore(state, kernel.table)
        assert restored.epoch == hub.epoch
        assert restored.coverage.edges == hub.coverage.edges
        assert len(restored.entries) == len(hub.entries)
        # A duplicate push is still recognised after the round-trip.
        assert restored.push(
            2, [_entry(programs[2], [[1, 2, 3]])], now=30.0
        ) == 0


class TestFuzzStatsMerge:
    def test_empty(self):
        merged = FuzzStats.merge([])
        assert merged.executions == 0
        assert merged.observations == []

    def test_counters_and_mutations_sum(self):
        a = FuzzStats(executions=10, mutations={"argument": 3})
        a.hub_pushed = 2
        b = FuzzStats(executions=5, mutations={"argument": 1, "insertion": 4})
        merged = FuzzStats.merge([a, b])
        assert merged.executions == 15
        assert merged.mutations == {"argument": 4, "insertion": 4}
        assert merged.hub_pushed == 2

    def test_timeline_takes_max_coverage_and_sums_executions(self):
        a = FuzzStats(observations=[
            FuzzObservation(0.0, 10, 8, 5),
            FuzzObservation(100.0, 30, 20, 50),
        ])
        b = FuzzStats(observations=[
            FuzzObservation(50.0, 25, 18, 40),
            FuzzObservation(150.0, 26, 19, 90),
        ])
        merged = FuzzStats.merge([a, b])
        assert [obs.time for obs in merged.observations] == [
            0.0, 50.0, 100.0, 150.0,
        ]
        # At t=50 only a's t=0 sample and b's t=50 sample are live.
        assert merged.observations[1].edges == 25
        assert merged.observations[1].executions == 45
        # At t=150 a holds 30 edges (step-interpolated), b 26.
        assert merged.observations[3].edges == 30
        assert merged.observations[3].executions == 140

    def test_time_to_edges_on_merged_timeline(self):
        a = FuzzStats(observations=[FuzzObservation(100.0, 30, 20, 1)])
        b = FuzzStats(observations=[FuzzObservation(40.0, 20, 15, 1)])
        merged = FuzzStats.merge([a, b])
        assert merged.time_to_edges(20) == 40.0
        assert merged.time_to_edges(30) == 100.0

    def test_breaker_state_takes_worst(self):
        a = FuzzStats()
        b = FuzzStats(breaker_state="open")
        assert FuzzStats.merge([a, b]).breaker_state == "open"


class TestSharedTier:
    def test_results_route_to_their_worker(self):
        service = InferenceService(
            predict_fn=lambda payload: payload[0] * 100,
            latency=10.0, servers=4,
        )
        tier = SharedInferenceTier(service)
        views = [tier.view(0), tier.view(1)]
        views[0].submit("a", now=0.0)
        views[1].submit("b", now=0.0)
        # Either worker's poll drains the shared service; each mailbox
        # only ever holds its owner's results.
        assert views[1].poll(now=20.0) == [("b", 100)]
        assert views[0].poll(now=20.0) == [("a", 0)]
        assert views[0].poll(now=20.0) == []

    def test_views_have_no_private_checkpoint_surface(self):
        tier = SharedInferenceTier(
            InferenceService(predict_fn=lambda q: q, latency=1.0)
        )
        view = tier.view(0)
        assert not hasattr(view, "state_dict")
        assert not hasattr(view, "restore")


class TestSchedulerDeterminism:
    def test_rejects_duplicate_worker_ids(self, kernel):
        cluster = _oracle_cluster(kernel, workers=2, horizon=600.0)
        workers = cluster.workers
        workers[1].worker_id = workers[0].worker_id
        with pytest.raises(ValueError, match="duplicate"):
            ClusterScheduler(workers)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_repeated_runs_bit_identical(self, kernel, workers):
        results = [
            _oracle_cluster(kernel, workers=workers).run() for _ in range(2)
        ]
        assert _result_signature(results[0]) == _result_signature(results[1])

    def test_more_workers_more_coverage(self, kernel):
        single = _oracle_cluster(kernel, workers=1).run()
        quad = _oracle_cluster(kernel, workers=4).run()
        assert quad.final_edges > single.final_edges

    def test_workers_actually_sync(self, kernel):
        result = _oracle_cluster(kernel, workers=2).run()
        assert all(stats.hub_syncs > 0 for stats in result.worker_stats)
        assert result.hub_stats.accepted > 0
        # Cross-pollination happened in both directions.
        assert sum(stats.hub_pulled for stats in result.worker_stats) > 0

    def test_run_until_is_resumable_inline(self, kernel):
        """Chunked driving reaches the same end state as one run() —
        the scheduler has no hidden per-call state."""
        whole = _oracle_cluster(kernel, workers=2).run()
        chunked = _oracle_cluster(kernel, workers=2)
        for bound in (600.0, 1200.0, 1800.0):
            chunked.run_until(bound)
        assert _result_signature(chunked.run()) == _result_signature(whole)


class TestClusterCheckpointResume:
    def test_kill_and_resume_bit_identical(self, kernel, tmp_path):
        """Two independent resumes of one mid-run checkpoint (through a
        real on-disk save/load) finish byte-identically."""
        original = _oracle_cluster(kernel, workers=2)
        original.run_until(1200.0)
        path = save_checkpoint(tmp_path / "cluster.json", cluster_state(original))
        finals = []
        for _ in range(2):
            fresh = _oracle_cluster(kernel, workers=2)
            restore_cluster_state(fresh, load_checkpoint(path))
            finals.append(fresh.run())
        assert _result_signature(finals[0]) == _result_signature(finals[1])
        assert all(
            stats.resumes == 1 for stats in finals[0].worker_stats
        )

    def test_resume_books_lost_inflight(self, kernel, tmp_path):
        original = _oracle_cluster(kernel, workers=2)
        original.run_until(1200.0)
        pending = original.tier.service.pending_count()
        fresh = _oracle_cluster(kernel, workers=2)
        lost = restore_cluster_state(fresh, cluster_state(original))
        assert lost == pending
        assert fresh.workers[0].loop.stats.inference_failures >= lost

    def test_worker_count_mismatch_rejected(self, kernel):
        state = cluster_state(_oracle_cluster(kernel, workers=2))
        with pytest.raises(CheckpointError, match="workers"):
            restore_cluster_state(_oracle_cluster(kernel, workers=4), state)

    def test_baseline_cluster_resume_matches_uninterrupted(self, kernel):
        """A Syzkaller fleet has no in-flight inference to lose, so a
        resumed run must equal the uninterrupted one exactly."""
        config = _campaign_config(seed=23)
        run_seed = derive_seed(config.seed, "cluster-test", kernel.version)

        def build():
            return build_cluster(
                kernel, None, run_seed, config,
                cluster_config=_cluster_config(2), baseline=True,
            )

        whole = build().run()
        interrupted = build()
        interrupted.run_until(1200.0)
        state = json.loads(json.dumps(cluster_state(interrupted)))
        resumed_cluster = build()
        restore_cluster_state(resumed_cluster, state)
        resumed = resumed_cluster.run()
        assert resumed.final_edges == whole.final_edges
        assert resumed.merged.executions == whole.merged.executions
        assert [
            stats.final_edges for stats in resumed.worker_stats
        ] == [stats.final_edges for stats in whole.worker_stats]


class TestScalingCampaign:
    def test_sweep_and_report(self, kernel):
        config = _campaign_config(seed=31, horizon=1800.0)
        result = run_scaling_campaign(
            kernel, None, config, worker_counts=(1, 2),
            cluster_config=_cluster_config(2), oracle=True,
        )
        edges = result.final_edges()
        assert set(edges) == {1, 2}
        assert edges[2] > 0
        qps = result.observed_qps()
        assert qps[2] >= 0.0
        report = format_scaling(result)
        assert "Scaling sweep" in report
        assert "per-worker breakdown" in report

    def test_empty_worker_counts_rejected(self, kernel):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            run_scaling_campaign(
                kernel, None, _campaign_config(), worker_counts=(),
                oracle=True,
            )


def _traces_for_shard(hub, shard, count, start=100):
    """Single-trace coverages whose signatures land on ``shard``."""
    found = []
    value = start
    while len(found) < count:
        traces = [[value, value + 1]]
        signature = frozenset(Coverage.from_traces(traces).edges)
        if hub.shard_of(signature) == shard:
            found.append(traces)
        value += 2
    return found


class TestShardedHub:
    def test_fault_free_parity_with_unsharded(self, programs):
        batches = [
            [_entry(programs[0], [[1, 2, 3]]), _entry(programs[1], [[4, 5]])],
            [_entry(programs[2], [[1, 2, 3]])],  # duplicate signature
            [_entry(programs[3], [[6, 7, 8]]), _entry(programs[4], [[1, 2]])],
        ]
        plain, sharded = CorpusHub(), ShardedHub(shards=4)
        for now, batch in enumerate(batches, start=1):
            assert (
                plain.push(now % 2, batch, float(now))
                == sharded.push(now % 2, batch, float(now))
            )
        assert sharded.epoch == plain.epoch
        assert sharded.coverage.edges == plain.coverage.edges
        assert sharded.stats.duplicates == plain.stats.duplicates
        assert sharded.stats.bloom_skips > 0

    def test_failover_parks_only_unreplicated_tail(self, programs):
        hub = ShardedHub(shards=2)
        victim = 0
        early = _traces_for_shard(hub, victim, 1, start=100)[0]
        late = _traces_for_shard(hub, victim, 1, start=500)[0]
        hub.push(0, [_entry(programs[0], early)], now=10.0)
        # Second round: the first round is replicated by the time this
        # push starts, so only this round's tail is vulnerable.
        hub.push(1, [_entry(programs[1], late)], now=20.0)
        before = len(hub.coverage.edges)
        parked = hub.fail_shard(victim, now=30.0)
        assert parked == 1
        assert hub.stats.lost_entries == 1
        assert hub.stats.failovers == 1
        assert hub.failed_shards == frozenset({victim})
        assert hub.outstanding_lost_entries() == 1
        assert len(hub.entries) == 1  # replicated prefix still served
        assert len(hub.coverage.edges) < before

    def test_recover_readmits_unsubsumed_backlog(self, programs):
        hub = ShardedHub(shards=2)
        victim = 1
        early = _traces_for_shard(hub, victim, 1, start=100)[0]
        late = _traces_for_shard(hub, victim, 1, start=500)[0]
        hub.push(0, [_entry(programs[0], early)], now=10.0)
        hub.push(1, [_entry(programs[1], late)], now=20.0)
        before = len(hub.coverage.edges)
        hub.fail_shard(victim, now=30.0)
        readmitted = hub.recover_shard(victim, now=40.0)
        assert readmitted == 1
        assert hub.stats.reconciled == 1
        assert hub.outstanding_lost_entries() == 0
        assert hub.failed_shards == frozenset()
        assert len(hub.coverage.edges) == before
        # High-water timeline stays monotone through the failover.
        edges = [obs.edges for obs in hub.timeline]
        assert edges == sorted(edges)

    def test_rediscovered_backlog_entry_reconciles_as_subsumed(
        self, programs
    ):
        hub = ShardedHub(shards=2)
        victim = 0
        traces = _traces_for_shard(hub, victim, 2, start=100)
        hub.push(0, [_entry(programs[0], traces[0])], now=10.0)
        hub.push(0, [_entry(programs[1], traces[1])], now=20.0)
        hub.fail_shard(victim, now=30.0)
        # The fleet rediscovers the lost coverage during the outage.
        hub.push(1, [_entry(programs[2], traces[1])], now=40.0)
        assert hub.recover_shard(victim, now=50.0) == 0
        assert hub.outstanding_lost_entries() == 0

    def test_state_roundtrip_preserves_failover_state(
        self, kernel, programs
    ):
        hub = ShardedHub(shards=2)
        victim = 0
        early = _traces_for_shard(hub, victim, 1, start=100)[0]
        late = _traces_for_shard(hub, victim, 1, start=500)[0]
        hub.push(0, [_entry(programs[0], early)], now=10.0)
        hub.push(1, [_entry(programs[1], late)], now=20.0)
        hub.fail_shard(victim, now=30.0)
        state = json.loads(json.dumps(hub.state_dict()))
        clone = ShardedHub(shards=2)
        clone.restore(state, kernel.table)
        assert clone.failed_shards == hub.failed_shards
        assert clone.outstanding_lost_entries() == 1
        assert clone.coverage.edges == hub.coverage.edges
        assert clone.epoch == hub.epoch
        # The restored backlog reconciles exactly like the original's.
        assert clone.recover_shard(victim, now=40.0) == 1

    def test_shard_count_mismatch_rejected(self, kernel, programs):
        hub = ShardedHub(shards=2)
        hub.push(0, [_entry(programs[0], [[1, 2]])], now=10.0)
        state = json.loads(json.dumps(hub.state_dict()))
        with pytest.raises(CheckpointError, match="shards"):
            ShardedHub(shards=4).restore(state, kernel.table)

    def test_bad_shard_operations_rejected(self):
        with pytest.raises(ValueError):
            ShardedHub(shards=0)
        with pytest.raises(ValueError):
            ShardedHub(shards=2).fail_shard(7, now=0.0)


def _supervised_cluster(
    kernel, seed=11, horizon=2400.0, workers=3, shards=1,
    deadline=600.0, plan=None,
):
    config = _campaign_config(seed=seed, horizon=horizon)
    run_seed = derive_seed(config.seed, "cluster-test", kernel.version)
    return build_cluster(
        kernel, None, run_seed, config,
        cluster_config=ClusterConfig(
            workers=workers, sync_interval=300.0, shards=shards,
            heartbeat_deadline=deadline,
        ),
        oracle=True,
        injector=FaultInjector(plan) if plan is not None else None,
    )


class TestSupervisedCluster:
    def test_kill_restart_is_deterministic(self, kernel):
        plan = FaultPlan().with_worker_kill(1, 600.0)
        first = _supervised_cluster(kernel, plan=plan)
        result_first = first.run()
        again = _supervised_cluster(kernel, plan=plan)
        result_again = again.run()
        assert result_first.signature() == result_again.signature()
        assert first.supervisor.restarts == 1
        assert first.workers[1].generation == 1
        assert first.workers[1].born > 600.0
        assert not first.workers[1].killed

    def test_restart_reseeds_corpus_from_hub(self, kernel):
        plan = FaultPlan().with_worker_kill(1, 600.0)
        cluster = _supervised_cluster(kernel, plan=plan)
        cluster.run()
        revived = cluster.workers[1]
        # The new incarnation started from the fleet's shared corpus,
        # not from scratch, and kept fuzzing productively.
        assert revived.loop.stats.executions > 0
        assert revived.loop.stats.corpus_size > 0
        assert revived.last_progress > revived.born

    def test_hang_victim_restart_cures_the_hang(self, kernel):
        # The window stays open to the horizon; only a restart (a fresh
        # VM, immune to the original process's hang) resumes progress.
        plan = FaultPlan().with_worker_hang(0, 600.0, 2400.0)
        cluster = _supervised_cluster(kernel, plan=plan)
        cluster.run()
        victim = cluster.workers[0]
        assert cluster.supervisor.restarts == 1
        assert victim.generation == 1
        assert victim.last_progress > victim.born

    def test_partition_drop_is_accounted_then_flush_recovers(self, kernel):
        plan = FaultPlan().with_hub_partition(1, 600.0, 2400.0)
        cluster = _supervised_cluster(kernel, plan=plan)
        result = cluster.run()
        hub = cluster.hub
        # Retries exhausted: the push batch was dropped and counted.
        assert hub.stats.sync_failures > 0
        assert hub.stats.dropped_entries > 0
        # Never silently: flush re-offered every dropped entry.
        assert cluster.workers[1].dropped == []
        assert cluster.supervisor.restarts == 0  # partitioned, not dead
        assert result.final_edges == len(hub.coverage.edges)

    def test_shard_loss_failover_and_recovery(self, kernel):
        plan = FaultPlan().with_shard_loss(0, 600.0, 1500.0)
        cluster = _supervised_cluster(kernel, plan=plan, shards=2)
        result = cluster.run()
        hub = cluster.hub
        assert hub.stats.failovers == 1
        assert hub.outstanding_lost_entries() == 0  # reconciled
        assert hub.failed_shards == frozenset()
        edges = [obs.edges for obs in result.hub_timeline]
        assert edges == sorted(edges)

    def test_supervised_fleet_is_deterministic_under_full_chaos(
        self, kernel
    ):
        config = ClusterConfig(
            workers=3, sync_interval=300.0, shards=2,
            heartbeat_deadline=600.0,
        )
        plan = chaos_plan(11, 2400.0, config)
        sites = {window.site.split(":")[0] for window in plan.windows}
        assert sites == {
            "worker_kill", "worker_hang", "hub_partition", "shard_loss"
        }
        first = _supervised_cluster(kernel, plan=plan, shards=2)
        again = _supervised_cluster(kernel, plan=plan, shards=2)
        assert first.run().signature() == again.run().signature()


class TestChaosResume:
    """Satellite: restart decisions must survive checkpoint/resume."""

    def test_checkpoint_after_restart_resumes_bit_identically(self, kernel):
        plan = FaultPlan().with_worker_kill(1, 600.0)
        probe = _supervised_cluster(kernel, plan=plan)
        probe.run_until(1800.0)
        assert probe.supervisor.restarts == 1  # restart is in the state
        state = json.loads(json.dumps(cluster_state(probe)))

        results = []
        for _ in range(2):
            resumed = _supervised_cluster(kernel, plan=plan)
            restore_cluster_state(resumed, state)
            assert resumed.workers[1].generation == 1
            assert resumed.supervisor.restarts == 1
            results.append(resumed.run())
        assert results[0].signature() == results[1].signature()

    def test_worker_dead_at_checkpoint_replays_restart_decision(
        self, kernel
    ):
        """A worker declared dead mid-campaign: every resume of that
        checkpoint must reproduce the exact same restart (same virtual
        time, same derived seed, same post-restart schedule)."""
        plan = FaultPlan().with_worker_kill(1, 600.0)
        probe = _supervised_cluster(kernel, plan=plan)
        probe.run_until(900.0)
        assert probe.workers[1].killed  # dead, restart still pending
        assert probe.supervisor.restarts == 0
        state = json.loads(json.dumps(cluster_state(probe)))

        finished = []
        for _ in range(2):
            resumed = _supervised_cluster(kernel, plan=plan)
            restore_cluster_state(resumed, state)
            assert resumed.workers[1].killed
            finished.append(resumed)
        results = [cluster.run() for cluster in finished]
        assert results[0].signature() == results[1].signature()
        for cluster in finished:
            assert cluster.supervisor.restarts == 1
            assert cluster.workers[1].generation == 1
            assert not cluster.workers[1].killed


class TestChaosCampaign:
    def test_chaos_campaign_holds_all_invariants(self, kernel):
        config = _campaign_config(seed=11)
        result = run_chaos_campaign(
            kernel, None, config,
            cluster_config=ClusterConfig(
                workers=3, sync_interval=300.0, shards=2,
                heartbeat_deadline=600.0,
            ),
            oracle=True,
        )
        assert result.zero_corpus_loss
        assert result.coverage_monotone
        assert result.resume_identical
        assert result.degraded_gracefully(10.0)
        assert result.passed()
        assert result.restarts >= 1
        assert result.outstanding_lost == 0
        # Zero-loss lineage accounting: every push is either accepted
        # or deduplicated, and each subsumption left a superseded_by
        # mark in the hub ledger.
        accounting = result.hub_accounting
        assert accounting["pushes"] == (
            accounting["accepted"] + accounting["duplicates"]
        )
        assert result.accounting_closed
        assert {w.site.split(":")[0] for w in result.plan.windows} == {
            "worker_kill", "worker_hang", "hub_partition", "shard_loss"
        }
        report = format_chaos(result)
        assert "verdict: PASS" in report
        assert "worker_kill" in report

    def test_chaos_campaign_requires_supervision(self, kernel):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError, match="heartbeat"):
            run_chaos_campaign(
                kernel, None, _campaign_config(),
                cluster_config=ClusterConfig(workers=2),
                oracle=True,
            )
