"""Tests for selector metrics and the inference-serving simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.pmm.metrics import evaluate_selector, score_sets
from repro.pmm.serve import InferenceService


class TestScoreSets:
    def test_perfect(self):
        assert score_sets({1, 2}, {1, 2}) == (1.0, 1.0, 1.0, 1.0)

    def test_disjoint(self):
        precision, recall, f1, jaccard = score_sets({1}, {2})
        assert (precision, recall, f1, jaccard) == (0.0, 0.0, 0.0, 0.0)

    def test_partial(self):
        precision, recall, f1, jaccard = score_sets({1, 2, 3, 4}, {1, 2})
        assert precision == 0.5
        assert recall == 1.0
        assert f1 == pytest.approx(2 / 3)
        assert jaccard == 0.5

    def test_both_empty(self):
        assert score_sets(set(), set()) == (1.0, 1.0, 1.0, 1.0)

    def test_empty_prediction(self):
        precision, recall, f1, jaccard = score_sets(set(), {1})
        assert precision == 0.0 and recall == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        predicted=st.frozensets(st.integers(0, 20), max_size=10),
        truth=st.frozensets(st.integers(0, 20), max_size=10),
    )
    def test_metric_bounds_property(self, predicted, truth):
        """Property: all four metrics live in [0, 1] and Jaccard <= F1
        (a standard set-metric inequality)."""
        precision, recall, f1, jaccard = score_sets(
            set(predicted), set(truth)
        )
        for metric in (precision, recall, f1, jaccard):
            assert 0.0 <= metric <= 1.0
        assert jaccard <= f1 + 1e-12


class TestEvaluateSelector:
    def test_averaging(self):
        metrics = evaluate_selector(
            [{1}, {1, 2}], [{1}, {3}]
        )
        assert metrics.examples == 2
        assert metrics.f1 == pytest.approx(0.5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            evaluate_selector([{1}], [])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_selector([], [])

    def test_row_format(self):
        metrics = evaluate_selector([{1}], [{1}])
        row = metrics.row("PMModel")
        assert "PMModel" in row
        assert "100.0%" in row


class TestInferenceService:
    def test_latency_applied(self):
        service = InferenceService(lambda q: q, latency=10.0, servers=2)
        ready = service.submit("q", now=0.0)
        assert ready == 10.0
        assert service.poll(9.9) == []
        assert service.poll(10.0) == [("q", "q")]

    def test_saturation_throughput(self):
        service = InferenceService(lambda q: q, latency=0.69, servers=39)
        assert service.saturation_throughput == pytest.approx(39 / 0.69)
        # ~57 q/s, the paper's measured number (§5.5).
        assert 55 < service.saturation_throughput < 58

    def test_queueing_beyond_servers(self):
        service = InferenceService(lambda q: q, latency=5.0, servers=1)
        first = service.submit("a", now=0.0)
        second = service.submit("b", now=0.0)
        assert first == 5.0
        assert second == 10.0  # waits for the single server

    def test_queue_capacity(self):
        service = InferenceService(
            lambda q: q, latency=5.0, servers=1, max_queue=2
        )
        assert service.submit("a", now=0.0) is not None
        assert service.submit("b", now=0.0) is not None
        assert service.submit("c", now=0.0) is None  # full

    def test_poll_order(self):
        service = InferenceService(lambda q: q, latency=2.0, servers=2)
        service.submit("a", now=0.0)
        service.submit("b", now=1.0)
        done = service.poll(10.0)
        assert [query for query, _ in done] == ["a", "b"]

    def test_stats(self):
        service = InferenceService(lambda q: q * 2, latency=1.0, servers=1)
        service.submit(3, now=0.0)
        service.submit(4, now=0.0)
        service.poll(10.0)
        assert service.stats.submitted == 2
        assert service.stats.completed == 2
        # First waits 0, second waits 1.0 behind the busy server.
        assert service.stats.total_queue_delay == pytest.approx(1.0)
        assert service.stats.mean_latency == pytest.approx(1.5)

    def test_bad_params_rejected(self):
        with pytest.raises(ModelError):
            InferenceService(lambda q: q, latency=0.0)
        with pytest.raises(ModelError):
            InferenceService(lambda q: q, latency=1.0, servers=0)

    def test_predictions_computed(self):
        service = InferenceService(lambda q: q + 1, latency=1.0)
        service.submit(41, now=0.0)
        ((query, prediction),) = service.poll(2.0)
        assert (query, prediction) == (41, 42)
