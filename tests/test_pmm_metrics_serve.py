"""Tests for selector metrics and the inference-serving simulation,
including its degraded modes (deadlines, retries, circuit breaking)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InferenceTimeout, ModelError
from repro.faults import CircuitBreaker, FaultInjector, FaultPlan
from repro.pmm.metrics import evaluate_selector, score_sets
from repro.pmm.serve import InferenceService


class TestScoreSets:
    def test_perfect(self):
        assert score_sets({1, 2}, {1, 2}) == (1.0, 1.0, 1.0, 1.0)

    def test_disjoint(self):
        precision, recall, f1, jaccard = score_sets({1}, {2})
        assert (precision, recall, f1, jaccard) == (0.0, 0.0, 0.0, 0.0)

    def test_partial(self):
        precision, recall, f1, jaccard = score_sets({1, 2, 3, 4}, {1, 2})
        assert precision == 0.5
        assert recall == 1.0
        assert f1 == pytest.approx(2 / 3)
        assert jaccard == 0.5

    def test_both_empty(self):
        assert score_sets(set(), set()) == (1.0, 1.0, 1.0, 1.0)

    def test_empty_prediction(self):
        precision, recall, f1, jaccard = score_sets(set(), {1})
        assert precision == 0.0 and recall == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        predicted=st.frozensets(st.integers(0, 20), max_size=10),
        truth=st.frozensets(st.integers(0, 20), max_size=10),
    )
    def test_metric_bounds_property(self, predicted, truth):
        """Property: all four metrics live in [0, 1] and Jaccard <= F1
        (a standard set-metric inequality)."""
        precision, recall, f1, jaccard = score_sets(
            set(predicted), set(truth)
        )
        for metric in (precision, recall, f1, jaccard):
            assert 0.0 <= metric <= 1.0
        assert jaccard <= f1 + 1e-12


class TestEvaluateSelector:
    def test_averaging(self):
        metrics = evaluate_selector(
            [{1}, {1, 2}], [{1}, {3}]
        )
        assert metrics.examples == 2
        assert metrics.f1 == pytest.approx(0.5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            evaluate_selector([{1}], [])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_selector([], [])

    def test_row_format(self):
        metrics = evaluate_selector([{1}], [{1}])
        row = metrics.row("PMModel")
        assert "PMModel" in row
        assert "100.0%" in row


class TestInferenceService:
    def test_latency_applied(self):
        service = InferenceService(lambda q: q, latency=10.0, servers=2)
        ready = service.submit("q", now=0.0)
        assert ready == 10.0
        assert service.poll(9.9) == []
        assert service.poll(10.0) == [("q", "q")]

    def test_saturation_throughput(self):
        service = InferenceService(lambda q: q, latency=0.69, servers=39)
        assert service.saturation_throughput == pytest.approx(39 / 0.69)
        # ~57 q/s, the paper's measured number (§5.5).
        assert 55 < service.saturation_throughput < 58

    def test_queueing_beyond_servers(self):
        service = InferenceService(lambda q: q, latency=5.0, servers=1)
        first = service.submit("a", now=0.0)
        second = service.submit("b", now=0.0)
        assert first == 5.0
        assert second == 10.0  # waits for the single server

    def test_queue_capacity(self):
        service = InferenceService(
            lambda q: q, latency=5.0, servers=1, max_queue=2
        )
        assert service.submit("a", now=0.0) is not None
        assert service.submit("b", now=0.0) is not None
        assert service.submit("c", now=0.0) is None  # full

    def test_poll_order(self):
        service = InferenceService(lambda q: q, latency=2.0, servers=2)
        service.submit("a", now=0.0)
        service.submit("b", now=1.0)
        done = service.poll(10.0)
        assert [query for query, _ in done] == ["a", "b"]

    def test_stats(self):
        service = InferenceService(lambda q: q * 2, latency=1.0, servers=1)
        service.submit(3, now=0.0)
        service.submit(4, now=0.0)
        service.poll(10.0)
        assert service.stats.submitted == 2
        assert service.stats.completed == 2
        # First waits 0, second waits 1.0 behind the busy server.
        assert service.stats.total_queue_delay == pytest.approx(1.0)
        assert service.stats.mean_latency == pytest.approx(1.5)

    def test_bad_params_rejected(self):
        with pytest.raises(ModelError):
            InferenceService(lambda q: q, latency=0.0)
        with pytest.raises(ModelError):
            InferenceService(lambda q: q, latency=1.0, servers=0)

    def test_predictions_computed(self):
        service = InferenceService(lambda q: q + 1, latency=1.0)
        service.submit(41, now=0.0)
        ((query, prediction),) = service.poll(2.0)
        assert (query, prediction) == (41, 42)

    def test_queue_full_counts_rejected(self):
        service = InferenceService(
            lambda q: q, latency=5.0, servers=1, max_queue=1
        )
        service.submit("a", now=0.0)
        assert service.submit("b", now=0.0) is None
        assert service.stats.rejected == 1
        assert service.stats.submitted == 1

    def test_mean_queue_delay(self):
        service = InferenceService(lambda q: q, latency=5.0, servers=1)
        service.submit("a", now=0.0)  # starts immediately
        service.submit("b", now=0.0)  # waits 5.0 behind the single slot
        assert service.stats.mean_queue_delay == pytest.approx(2.5)

    def test_prediction_deferred_until_poll(self):
        calls = []
        service = InferenceService(
            lambda q: calls.append(q) or q, latency=1.0
        )
        service.submit("x", now=0.0)
        assert calls == []  # submission must not evaluate
        service.poll(0.5)
        assert calls == []  # not ready yet
        service.poll(1.0)
        assert calls == ["x"]


class TestDegradedService:
    """Fault-injected serving: the §5.5 replicas time out and crash."""

    @staticmethod
    def _outage(start=0.0, end=1e9):
        return FaultInjector(FaultPlan().with_window("inference", start, end))

    def test_lost_request_never_computes(self):
        calls = []
        service = InferenceService(
            lambda q: calls.append(q) or q, latency=1.0,
            deadline=2.0, injector=self._outage(),
        )
        service.submit("x", now=0.0)
        assert service.poll(100.0) == []
        assert calls == []  # the discarded prediction was never paid for
        assert service.stats.timeouts == 1
        assert service.drain_failures() == [("x", "timeout")]
        assert service.drain_failures() == []  # drained once

    def test_retries_with_exponential_backoff(self):
        service = InferenceService(
            lambda q: q, latency=1.0, deadline=2.0, max_retries=2,
            retry_backoff=1.0,
            injector=self._outage(end=4.0),
        )
        # Attempt 1 at t=0 fails (detected t=2), retry at t=3 fails
        # (detected t=5? no — window ends at 4, attempt 2 starts at
        # 2+1=3, still inside, detected 5), attempt 3 at 5+2=7 is past
        # the outage and succeeds at 8.
        ready = service.submit("q", now=0.0)
        assert ready == pytest.approx(8.0)
        assert service.stats.retries == 2
        assert service.poll(8.0) == [("q", "q")]
        assert service.stats.completed == 1
        assert service.stats.failures == 0

    def test_exhausted_retries_fail(self):
        service = InferenceService(
            lambda q: q, latency=1.0, deadline=2.0, max_retries=1,
            retry_backoff=1.0, injector=self._outage(),
        )
        service.submit("q", now=0.0)
        service.poll(1e6)
        assert service.stats.failures == 1
        assert service.stats.retries == 1

    def test_slot_crashes_counted_separately(self):
        injector = FaultInjector(
            FaultPlan().with_window("server_slot", 0.0, 1e9)
        )
        service = InferenceService(
            lambda q: q, latency=1.0, injector=injector
        )
        service.submit("q", now=0.0)
        service.poll(1e6)
        assert service.stats.slot_crashes == 1
        assert service.stats.timeouts == 0

    def test_strict_mode_raises(self):
        service = InferenceService(
            lambda q: q, latency=1.0, deadline=1.0,
            injector=self._outage(), strict=True,
        )
        service.submit("q", now=0.0)
        with pytest.raises(InferenceTimeout):
            service.poll(1e6)

    def test_breaker_opens_and_rejects(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1000.0)
        service = InferenceService(
            lambda q: q, latency=1.0, deadline=1.0,
            injector=self._outage(), breaker=breaker,
        )
        service.submit("a", now=0.0)
        service.submit("b", now=0.0)
        service.poll(10.0)  # both failures observed: breaker trips
        assert service.stats.breaker_state == "open"
        assert service.stats.breaker_trips == 1
        assert service.submit("c", now=20.0) is None
        assert service.stats.breaker_rejections == 1

    def test_breaker_recovers_through_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=50.0)
        service = InferenceService(
            lambda q: q, latency=1.0, deadline=1.0,
            injector=self._outage(end=10.0), breaker=breaker,
        )
        service.submit("a", now=0.0)
        service.poll(10.0)
        assert service.stats.breaker_state == "open"
        assert service.submit("b", now=20.0) is None  # still open
        probe = service.submit("c", now=60.0)  # half-open probe admitted
        assert probe is not None
        service.poll(probe)
        assert service.stats.breaker_state == "closed"
        assert service.stats.completed == 1

    def test_fault_free_service_identical_to_plain(self):
        """An attached but empty plan must not change scheduling."""
        plain = InferenceService(lambda q: q, latency=2.0, servers=2)
        injected = InferenceService(
            lambda q: q, latency=2.0, servers=2, deadline=4.0,
            max_retries=2, injector=FaultInjector(FaultPlan.none()),
        )
        for service in (plain, injected):
            service.submit("a", now=0.0)
            service.submit("b", now=1.0)
        assert plain.poll(10.0) == injected.poll(10.0)
        assert plain.stats.mean_latency == injected.stats.mean_latency

    def test_state_roundtrip_drops_pending(self):
        service = InferenceService(lambda q: q, latency=2.0, servers=1)
        service.submit("a", now=0.0)
        service.submit("b", now=0.0)
        state = service.state_dict()
        clone = InferenceService(lambda q: q, latency=2.0, servers=1)
        lost = clone.restore(state)
        assert lost == 2
        assert clone.pending_count() == 0
        assert clone.stats.submitted == 2
        # The restored slot schedule carries over.
        assert clone.submit("c", now=0.0) == service.submit("c", now=0.0)


class TestQueueDelayDistribution:
    def test_percentiles_and_max(self):
        from repro.pmm.serve import InferenceStats

        stats = InferenceStats()
        for delay in (1.0, 2.0, 3.0, 4.0, 10.0):
            stats.record_queue_delay(delay)
        # Streaming histogram quantiles read off power-of-two buckets:
        # the median sample 3.0 lands in the (2, 4] bucket, p50 is its
        # upper bound.
        assert stats.p50_queue_delay == 4.0
        assert stats.p95_queue_delay == 10.0
        assert stats.max_queue_delay == 10.0
        assert stats.mean_queue_delay == pytest.approx(4.0)

    def test_empty_distribution_is_zero(self):
        from repro.pmm.serve import InferenceStats

        stats = InferenceStats()
        assert stats.p50_queue_delay == 0.0
        assert stats.p95_queue_delay == 0.0
        assert stats.max_queue_delay == 0.0

    def test_unbatched_service_populates_distribution(self):
        service = InferenceService(lambda q: q, latency=5.0, servers=1)
        service.submit("a", now=0.0)
        service.submit("b", now=0.0)  # queues behind a for 5s
        assert service.stats.max_queue_delay == 5.0
        assert service.stats.mean_batch_size == 1.0


class TestBatchingService:
    def _service(self, **kwargs):
        from repro.pmm.serve import BatchingInferenceService

        defaults = dict(
            predict_fn=lambda payload: payload,
            base_latency=6.0,
            marginal_latency=1.0,
            max_batch_size=4,
            batch_timeout=10.0,
            servers=2,
        )
        defaults.update(kwargs)
        return BatchingInferenceService(**defaults)

    def test_full_batch_dispatches_immediately(self):
        service = self._service()
        for name in "abcd":
            service.submit(name, now=0.0)
        # latency(4) = 6 + 4*1 = 10; everything lands together.
        assert service.poll(9.9) == []
        done = service.poll(10.0)
        assert [query for query, _ in done] == ["a", "b", "c", "d"]
        assert service.stats.batch_sizes == {4: 1}
        assert service.stats.completed == 4

    def test_timeout_flushes_partial_batch(self):
        service = self._service()
        service.submit("a", now=0.0)
        service.submit("b", now=3.0)
        # Oldest arrival 0.0 + timeout 10 => dispatch at 10, size 2,
        # latency(2) = 8 => ready 18.
        assert service.poll(17.9) == []
        done = service.poll(18.0)
        assert [query for query, _ in done] == ["a", "b"]
        assert service.stats.batch_sizes == {2: 1}
        # Queue delays are dispatch - arrival.
        assert service.stats.max_queue_delay == 10.0
        # Bucketed median: 7.0 sits in the (4, 8] bucket.
        assert service.stats.p50_queue_delay == 8.0

    def test_saturation_beats_unbatched_baseline(self):
        service = self._service()
        unbatched = InferenceService(
            lambda q: q, latency=7.0, servers=2
        )  # same single-request latency (6 + 1)
        assert service.latency_of(1) == 7.0
        assert service.saturation_throughput > unbatched.saturation_throughput

    def test_batches_queue_for_free_slot(self):
        service = self._service(servers=1)
        for name in "abcdefgh":  # two full batches, one slot
            service.submit(name, now=0.0)
        done = service.poll(10.0)
        assert len(done) == 4
        # Second batch starts when the slot frees at 10, ready at 20.
        assert service.poll(19.9) == []
        assert len(service.poll(20.0)) == 4

    def test_crashed_slot_loses_whole_batch_and_retries_requeue(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=5).with_window("server_slot", 0.0, 1.0)
        service = self._service(
            servers=1, injector=FaultInjector(plan), max_retries=1,
        )
        for name in "abcd":
            service.submit(name, now=0.0)
        # The batch crashes (detection = latency(4) = 10), all four
        # re-enqueue as one retry batch dispatched at t=10 — outside the
        # fault window — and complete at 20.
        assert service.poll(10.0) == []
        assert service.stats.slot_crashes == 1
        assert service.stats.retries == 4
        done = service.poll(20.0)
        assert sorted(query for query, _ in done) == ["a", "b", "c", "d"]
        assert service.drain_failures() == []

    def test_exhausted_batch_retries_surface_failures(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=5).with_window("server_slot", 0.0, 100.0)
        service = self._service(servers=1, injector=FaultInjector(plan))
        for name in "abcd":
            service.submit(name, now=0.0)
        service.poll(50.0)
        assert service.stats.failures == 4
        failed = service.drain_failures()
        assert sorted(query for query, _ in failed) == ["a", "b", "c", "d"]

    def test_state_roundtrip_drops_pending(self):
        import json

        service = self._service()
        service.submit("a", now=0.0)   # still forming a batch
        for name in "bcde":
            service.submit(name, now=1.0)  # full batch in flight
        state = json.loads(json.dumps(service.state_dict()))
        fresh = self._service()
        lost = fresh.restore(state)
        assert lost == 5
        assert fresh.pending_count() == 0
        assert fresh.stats.submitted == 5
        assert fresh.stats.batch_sizes == {4: 1}

    def test_bad_params_rejected(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            self._service(base_latency=0.0)
        with pytest.raises(ModelError):
            self._service(marginal_latency=-1.0)
        with pytest.raises(ModelError):
            self._service(max_batch_size=0)
        with pytest.raises(ModelError):
            self._service(batch_timeout=0.0)

    def test_deterministic_under_replay(self):
        def run():
            service = self._service(servers=1)
            log = []
            for step in range(40):
                service.submit(f"q{step}", now=float(step))
                log.extend(service.poll(float(step)))
            log.extend(service.poll(1000.0))
            return [query for query, _ in log], dict(service.stats.batch_sizes)

        assert run() == run()
