"""Shared fixtures: small kernels, generators, executors.

Session-scoped where construction is expensive; tests must not mutate
shared objects (executors get fresh state per run by design).
"""

import pytest

from repro.kernel import Executor, build_kernel
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator, build_standard_table


@pytest.fixture(scope="session")
def table():
    return build_standard_table("6.8")


@pytest.fixture(scope="session")
def table_610():
    return build_standard_table("6.10")


@pytest.fixture(scope="session")
def kernel():
    return build_kernel("6.8", seed=1, size="small")


@pytest.fixture(scope="session")
def kernel_69():
    return build_kernel("6.9", seed=1, size="small")


@pytest.fixture()
def generator(kernel):
    return ProgramGenerator(kernel.table, make_rng(100))


@pytest.fixture()
def executor(kernel):
    return Executor(kernel)
