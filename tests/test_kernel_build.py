"""Tests for synthetic kernel construction and static analysis."""

import pytest

from repro.errors import KernelBuildError
from repro.kernel import BlockRole, build_kernel
from repro.kernel.build import (
    BugPlan,
    KernelBuilder,
    KernelConfig,
    enumerate_type_paths,
)
from repro.kernel.bugs import CrashKind
from repro.kernel.cfg import HandlerCFG
from repro.kernel.blocks import BasicBlock
from repro.kernel.versions import default_bug_plans
from repro.syzlang import build_standard_table
from repro.syzlang.stdlib import ATA_16


class TestEnumerateTypePaths:
    def test_nested_paths(self, table):
        spec = table.lookup("ioctl$SCSI_IOCTL_SEND_COMMAND")
        paths = dict(enumerate_type_paths(spec))
        # cdb.opcode lives at arg 2 -> ptr deref -> field 2 -> field 0.
        assert (2, 0, 2, 0) in paths

    def test_excludes_consts_and_resources(self, table):
        spec = table.lookup("ioctl$SCSI_IOCTL_SEND_COMMAND")
        elements = [p for p, _ in enumerate_type_paths(spec)]
        assert (0,) not in elements  # fd resource
        assert (1,) not in elements  # command constant


class TestKernelStructure:
    def test_every_handler_validates(self, kernel):
        for cfg in kernel.handlers.values():
            cfg.validate()

    def test_every_spec_has_handler(self, kernel):
        for spec in kernel.table:
            assert spec.full_name in kernel.handlers

    def test_block_ids_globally_unique(self, kernel):
        seen = set()
        for cfg in kernel.handlers.values():
            for block_id in cfg.block_ids():
                # Shared ids across handlers would break coverage.
                key = (block_id,)
                assert block_id not in seen or kernel.handler_of_block[
                    block_id
                ] == cfg.syscall
                seen.add(block_id)

    def test_handler_of_block_consistent(self, kernel):
        for name, cfg in kernel.handlers.items():
            for block_id in cfg.block_ids():
                assert kernel.handler_of_block[block_id] == name

    def test_preds_invert_succs(self, kernel):
        for src, dsts in kernel.succs.items():
            for dst in dsts:
                assert src in kernel.preds[dst]

    def test_deterministic_build(self):
        a = build_kernel("6.8", seed=9, size="small")
        b = build_kernel("6.8", seed=9, size="small")
        assert a.block_count == b.block_count
        for name in a.handlers:
            assert a.handlers[name].succs == b.handlers[name].succs


class TestFrontier:
    def test_frontier_excludes_covered(self, kernel):
        cfg = next(iter(kernel.handlers.values()))
        covered = {cfg.entry}
        frontier = kernel.frontier(covered)
        assert cfg.entry not in frontier
        assert frontier == set(kernel.succs[cfg.entry])

    def test_frontier_empty_for_empty_coverage(self, kernel):
        assert kernel.frontier(set()) == set()

    def test_distance_to_target(self, kernel):
        cfg = next(iter(kernel.handlers.values()))
        exits = cfg.exits()
        distance = kernel.distance_to(exits[0])
        assert distance[exits[0]] == 0
        assert cfg.entry in distance  # exit reachable from entry


class TestBugs:
    def test_ata_bug_planted(self, kernel):
        assert "ata-oob" in kernel.bug_blocks
        bug = next(b for b in kernel.bugs if b.bug_id == "ata-oob")
        assert bug.kind is CrashKind.OOB
        assert bug.corrupts_memory
        assert not bug.known

    def test_ata_conditions_match_paper(self, kernel):
        """Bug #1's guard chain: ATA_16 opcode first."""
        block_id = kernel.bug_blocks["ata-oob"]
        cfg = kernel.handlers["ioctl$SCSI_IOCTL_SEND_COMMAND"]
        # The immediate conditional predecessor checks outlen > 512;
        # walking predecessors reaches the opcode == ATA_16 check.
        operands = set()
        frontier = {block_id}
        seen = set()
        while frontier:
            current = frontier.pop()
            for pred in kernel.preds.get(current, ()):
                block = kernel.blocks[pred]
                if block.role is BlockRole.CONDITION and pred not in seen:
                    seen.add(pred)
                    operands.add(block.condition.operand)
                    frontier.add(pred)
        assert ATA_16 in operands
        assert 512 in operands

    def test_default_plan_depths(self, kernel):
        for bug in kernel.bugs:
            block_id = kernel.bug_blocks[bug.bug_id]
            cfg = kernel.handlers[
                kernel.handler_of_block[block_id]
            ]
            # Reaching the crash block requires at least `depth`
            # conditions along the shortest path.
            assert cfg.depth_of(block_id) >= bug.depth

    def test_known_and_unknown_bugs_present(self, kernel):
        known = [b for b in kernel.bugs if b.known]
        unknown = [b for b in kernel.bugs if not b.known]
        assert len(known) >= 5
        assert len(unknown) >= 5

    def test_unknown_syscall_in_plan_rejected(self, table):
        config = KernelConfig(
            seed=0,
            bug_plans=(
                BugPlan("x", CrashKind.GPF, "fs", "f", depth=1,
                        syscall="nonexistent"),
            ),
            plant_ata_bug=False,
        )
        with pytest.raises(KernelBuildError):
            KernelBuilder(table, config).build()


class TestVersions:
    def test_later_versions_grow(self):
        v68 = build_kernel("6.8", seed=1, size="small")
        v69 = build_kernel("6.9", seed=1, size="small")
        v610 = build_kernel("6.10", seed=1, size="small")
        assert v69.block_count > v68.block_count
        assert v610.block_count > v69.block_count

    def test_shared_handlers_mostly_identical(self):
        """Cross-version code sharing: most 6.8 handlers keep their
        structure in 6.9 (the perturbed fraction is small)."""
        v68 = build_kernel("6.8", seed=1, size="small")
        v69 = build_kernel("6.9", seed=1, size="small")
        same = 0
        total = 0
        for name, cfg in v68.handlers.items():
            other = v69.handlers.get(name)
            if other is None:
                continue
            total += 1
            asm_a = sorted(b.asm for b in cfg.blocks.values())
            asm_b = sorted(b.asm for b in other.blocks.values())
            if asm_a == asm_b:
                same += 1
        assert total > 0
        assert same / total > 0.6

    def test_new_subsystems_in_610(self):
        v610 = build_kernel("6.10", seed=1, size="small")
        assert any(name.startswith("sendmsg$rxrpc") for name in v610.handlers)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            build_kernel("6.8", seed=1, size="gigantic")

    def test_default_bug_plans_unique_ids(self):
        plans = default_bug_plans()
        ids = [plan.bug_id for plan in plans]
        assert len(ids) == len(set(ids))


class TestHandlerCFGValidation:
    def _tiny_cfg(self):
        cfg = HandlerCFG(syscall="x", entry=0)
        cfg.blocks[0] = BasicBlock(0, "e", "s", BlockRole.ENTRY)
        cfg.blocks[1] = BasicBlock(1, "x", "s", BlockRole.EXIT_SUCCESS)
        cfg.succs[0] = (1,)
        return cfg

    def test_valid_tiny_cfg(self):
        self._tiny_cfg().validate()

    def test_unknown_successor_rejected(self):
        cfg = self._tiny_cfg()
        cfg.succs[0] = (99,)
        with pytest.raises(KernelBuildError):
            cfg.validate()

    def test_unreachable_block_rejected(self):
        cfg = self._tiny_cfg()
        cfg.blocks[2] = BasicBlock(2, "dead", "s", BlockRole.BODY)
        cfg.succs[2] = (1,)
        with pytest.raises(KernelBuildError):
            cfg.validate()

    def test_cycle_rejected(self):
        cfg = self._tiny_cfg()
        cfg.blocks[2] = BasicBlock(2, "loop", "s", BlockRole.BODY)
        cfg.succs[0] = (2,)
        cfg.succs[2] = (0,)
        with pytest.raises(KernelBuildError):
            cfg.validate()

    def test_exit_with_successor_rejected(self):
        cfg = self._tiny_cfg()
        cfg.succs[1] = (0,)
        with pytest.raises(KernelBuildError):
            cfg.validate()
