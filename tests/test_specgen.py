"""repro.specgen: inference, emission round-trips, fidelity, campaign."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analyze import (
    registered_checks,
    run_kernel_checks,
    strict_failures,
    table_mismatch_findings,
)
from repro.kernel import build_kernel
from repro.rng import make_rng
from repro.specgen import (
    diff_tables,
    fidelity_json,
    infer_specs,
    infer_table,
    kernel_with_table,
    parse_table,
    resource_edges,
    run_specgen_campaign,
    serialize_table,
)
from repro.syzlang import (
    ProgramGenerator,
    build_standard_table,
    parse_program,
    serialize_program,
)
from repro.syzlang.stdlib import KNOWN_VERSIONS, release_deltas
from repro.syzlang.types import FlagsType, ResourceType


@pytest.fixture(scope="module")
def tiny_kernels():
    return {
        version: build_kernel(version, seed=1, size="tiny")
        for version in KNOWN_VERSIONS
    }


@pytest.fixture(scope="module")
def inferred(tiny_kernels):
    return {
        version: infer_specs(kernel)
        for version, kernel in tiny_kernels.items()
    }


class TestInference:
    def test_covers_every_handler(self, tiny_kernels, inferred):
        for version, kernel in tiny_kernels.items():
            table, report = inferred[version]
            assert {spec.full_name for spec in table} == set(kernel.handlers)
            assert report.syscalls == len(kernel.handlers)

    def test_consumers_are_wireable(self, inferred):
        """Every consumed resource kind has at least one producer, so
        the generator can always wire references."""
        for version, (table, _) in inferred.items():
            for spec in table:
                for kind in spec.consumes():
                    assert table.producers_of(kind), (
                        f"{version}: no producer for {kind.name} "
                        f"consumed by {spec.full_name}"
                    )

    def test_guards_become_resource_args(self, tiny_kernels, inferred):
        """Each fd-guard block maps to a leading ResourceType argument."""
        for version, kernel in tiny_kernels.items():
            table, _ = inferred[version]
            for block in kernel.blocks.values():
                if not block.label.endswith(":fdget"):
                    continue
                name = block.label.rsplit(":", 1)[0]
                condition = block.condition
                spec = table.lookup(name)
                index = condition.path_elements[0]
                assert isinstance(spec.args[index][1], ResourceType)

    def test_report_gauges(self, tiny_kernels):
        from repro.observe import Observer

        observer = Observer()
        _, report = infer_specs(tiny_kernels["6.8"], observer=observer)
        snapshot = observer.registry.snapshot()
        assert snapshot["gauges"]["specgen.syscalls"] == report.syscalls
        assert snapshot["gauges"]["specgen.flag_bits"] == report.flag_bits


class TestEmitRoundTrip:
    def test_inferred_tables_round_trip(self, inferred):
        for version, (table, _) in inferred.items():
            text = serialize_table(table, comment=f"kernel {version}")
            assert parse_table(text) == table

    def test_truth_tables_round_trip(self):
        for version in KNOWN_VERSIONS:
            table = build_standard_table(version)
            assert parse_table(serialize_table(table)) == table

    def test_serialization_is_stable(self, inferred):
        table, _ = inferred["6.8"]
        assert serialize_table(table) == serialize_table(table)
        assert serialize_table(parse_table(serialize_table(table))) == \
            serialize_table(table)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 50_000))
    def test_programs_under_inferred_table(self, inferred, seed):
        """Property: programs generated from the inferred table are
        valid under it and round-trip through the syz program format."""
        table, _ = inferred["6.8"]
        program = ProgramGenerator(table, make_rng(seed)).random_program()
        program.validate(table)
        text = serialize_program(program)
        again = parse_program(text, table)
        assert serialize_program(again) == text


class TestDiff:
    def test_self_diff_is_perfect(self):
        truth = build_standard_table("6.8")
        fidelity = diff_tables(truth, truth, version="6.8")
        assert fidelity.syscall_coverage == 1.0
        assert fidelity.kind_accuracy == 1.0
        assert fidelity.flag_recall == 1.0
        assert fidelity.resource_precision == 1.0
        assert fidelity.resource_recall == 1.0

    def test_fidelity_floors_on_tiny(self, inferred):
        for version, (table, _) in inferred.items():
            fidelity = diff_tables(
                table, build_standard_table(version), version=version
            )
            assert fidelity.syscall_coverage == 1.0
            assert fidelity.kind_accuracy >= 0.7
            assert fidelity.flag_recall >= 0.2
            assert fidelity.resource_precision >= 0.6
            assert fidelity.resource_recall >= 0.4

    def test_deterministic_report(self, tiny_kernels):
        kernel = tiny_kernels["6.8"]
        truth = build_standard_table("6.8")
        first = diff_tables(infer_table(kernel), truth, version="6.8")
        second = diff_tables(infer_table(kernel), truth, version="6.8")
        assert first == second
        assert fidelity_json([first], size="tiny") == \
            fidelity_json([second], size="tiny")

    def test_resource_edges_shape(self):
        truth = build_standard_table("6.8")
        edges = resource_edges(truth)
        assert ("open", "read") in edges
        assert all(
            producer in truth and consumer in truth
            for producer, consumer in edges
        )


class TestSpecTableLint:
    def test_check_registered(self):
        names = {check.name for check in registered_checks("kernel")}
        assert "spec-table-mismatch" in names

    def test_stock_kernel_no_errors(self, tiny_kernels):
        findings = run_kernel_checks(tiny_kernels["6.8"])
        mismatch = [f for f in findings if f.check == "spec-table-mismatch"]
        assert mismatch, "stdlib declares more bits than the kernel uses"
        assert not strict_failures(mismatch)

    def test_inferred_table_is_clean(self, tiny_kernels, inferred):
        for version, kernel in tiny_kernels.items():
            table, _ = inferred[version]
            assert table_mismatch_findings(kernel, table) == []

    def test_narrowed_domain_fails(self, tiny_kernels, inferred):
        from dataclasses import replace

        from repro.syzlang.spec import SyscallTable

        def narrow(ty):
            if isinstance(ty, FlagsType) and len(ty.flags) > 1:
                return FlagsType(flags=ty.flags[:1], bits=ty.bits)
            if hasattr(ty, "elem"):
                return replace(ty, elem=narrow(ty.elem))
            if hasattr(ty, "fields"):
                return replace(ty, fields=tuple(
                    (name, narrow(field)) for name, field in ty.fields
                ))
            return ty

        table, _ = inferred["6.8"]
        mutated = SyscallTable([
            replace(spec, args=tuple(
                (name, narrow(ty)) for name, ty in spec.args
            ))
            for spec in table
        ])
        findings = table_mismatch_findings(tiny_kernels["6.8"], mutated)
        assert strict_failures(findings)

    def test_namespace_prefix(self, tiny_kernels, inferred):
        table, _ = inferred["6.8"]
        findings = table_mismatch_findings(
            tiny_kernels["6.8"], build_standard_table("6.8"),
            namespace="6.8/",
        )
        assert findings
        assert all(f.location.startswith("6.8/") for f in findings)


class TestStdlibDeltas:
    def test_known_versions_derive_from_deltas(self):
        assert KNOWN_VERSIONS == tuple(v for v, _ in release_deltas("6.10"))

    def test_deltas_are_cumulative(self):
        base = {spec.full_name for spec in build_standard_table("6.8")}
        mid = {spec.full_name for spec in build_standard_table("6.9")}
        top = {spec.full_name for spec in build_standard_table("6.10")}
        assert base < mid < top
        assert mid - base == {
            "socket$xdp", "setsockopt$XDP_UMEM_REG",
            "landlock_create_ruleset", "landlock_restrict_self",
        }
        assert top - mid == {"socket$rxrpc", "sendmsg$rxrpc"}


class TestCampaign:
    def test_kernel_view_swaps_only_table(self, tiny_kernels, inferred):
        kernel = tiny_kernels["6.8"]
        table, _ = inferred["6.8"]
        view = kernel_with_table(kernel, table)
        assert view.table is table
        assert view.blocks is kernel.blocks
        assert view.handlers is kernel.handlers
        assert view.succs is kernel.succs

    def test_coverage_ratio_meets_floor(self):
        result = run_specgen_campaign(
            versions=("6.8",), seed=0, kernel_seed=1, size="tiny",
            hours=0.3, seed_corpus=10,
        )
        run = result.run_for("6.8")
        assert run.truth_edges > 0
        assert run.coverage_ratio >= 0.7

    def test_campaign_is_deterministic(self):
        kwargs = dict(
            versions=("6.8",), seed=3, kernel_seed=1, size="tiny",
            hours=0.2, seed_corpus=8,
        )
        first = run_specgen_campaign(**kwargs)
        second = run_specgen_campaign(**kwargs)
        assert first.to_dict() == second.to_dict()
        assert first.to_json() == second.to_json()


class TestSpecgenCLI:
    def test_infer_lint_strict(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "specgen", "infer", "--releases", "6.8", "--size", "tiny",
            "--out", str(tmp_path), "--lint", "--strict",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "inferred" in out
        assert (tmp_path / "specs_6_8.syz").exists()
        table = parse_table((tmp_path / "specs_6_8.syz").read_text())
        assert len(table) == 47

    def test_diff_strict_passes_floors(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "fidelity.json"
        code = main([
            "specgen", "diff", "--releases", "6.8,6.9,6.10",
            "--size", "tiny", "--strict", "--out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()

    def test_diff_strict_fails_impossible_floor(self, capsys):
        from repro.cli import main

        code = main([
            "specgen", "diff", "--releases", "6.8", "--size", "tiny",
            "--strict", "--min-flag-recall", "0.99",
        ])
        assert code == 1

    def test_campaign_table_output(self, capsys):
        from repro.cli import main

        code = main([
            "specgen", "campaign", "--releases", "6.8", "--size", "tiny",
            "--hours", "0.2", "--seed-corpus", "8", "--strict",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Spec inference evaluation" in out


class TestReporting:
    def test_format_specgen_lists_each_release(self):
        from repro.snowplow import format_specgen, specgen_json

        result = run_specgen_campaign(
            versions=("6.8",), seed=0, kernel_seed=1, size="tiny",
            hours=0.2, seed_corpus=8,
        )
        text = format_specgen(result)
        assert "6.8" in text
        assert "Ratio" in text
        payload = specgen_json(result)
        assert '"coverage_ratio"' in payload
