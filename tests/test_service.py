"""The campaign service: routing, quotas, scheduling, determinism.

The expensive invariants — standalone-vs-multiplexed bit-identity and
the two-independent-restores resume contract — run on tiny kernels so
the whole module stays in tier-1 time budget.
"""

import json

import pytest

from repro.errors import CheckpointError
from repro.service import (
    CampaignSpec,
    Quota,
    QuotaError,
    Request,
    Response,
    ServiceServer,
    SessionManager,
    SpecError,
    encode_signature,
    format_service_health,
    load_service,
    match,
    save_service,
    service_exists,
    service_health,
)
from repro.kernel import build_kernel
from repro.snowplow import build_fuzz_loop, fuzz_campaign_config, fuzz_run_seed


def _spec_params(tenant, **overrides):
    params = {
        "tenant": tenant, "size": "tiny", "mode": "oracle",
        "hours": 0.2, "seed": 3, "seed_corpus": 8,
    }
    params.update(overrides)
    return params


def _submit(server, tenant, **overrides):
    response = server.handle(
        Request("POST", "/campaigns", _spec_params(tenant, **overrides))
    )
    assert response.status == 201, response.body
    return response.body["job"]["job_id"]


def _advance(server, until=None):
    params = {} if until is None else {"until": until}
    response = server.handle(Request("POST", "/advance", params))
    assert response.ok
    return response.body


def _result(server, job_id):
    response = server.handle(Request("GET", f"/campaigns/{job_id}/result"))
    assert response.status == 200, response.body
    return response.body["result"]


class TestRoutes:
    def test_match_binds_path_params(self):
        assert match("GET", "/health") == ("health", {})
        assert match("POST", "/campaigns") == ("submit", {})
        assert match("GET", "/campaigns/job-7") == (
            "status", {"job_id": "job-7"}
        )
        assert match("GET", "/campaigns/job-7/progress") == (
            "progress", {"job_id": "job-7"}
        )
        assert match("POST", "/campaigns/job-7/cancel") == (
            "cancel", {"job_id": "job-7"}
        )
        assert match("GET", "/tenants/alice") == (
            "tenant_status", {"tenant": "alice"}
        )

    def test_match_rejects_unknown(self):
        assert match("GET", "/nope") is None
        assert match("DELETE", "/campaigns/job-1") is None
        assert match("GET", "/campaigns/job-1/nope") is None

    def test_unknown_route_is_404(self):
        response = ServiceServer().handle(Request("GET", "/nope"))
        assert response.status == 404 and not response.ok

    def test_response_json_is_canonical(self):
        response = Response(200, {"b": 1, "a": 2})
        doc = json.loads(response.json())
        assert doc == {"status": 200, "body": {"a": 2, "b": 1}}
        assert response.json().index('"a"') < response.json().index('"b"')


class TestCampaignSpec:
    def test_round_trip(self):
        spec = CampaignSpec(**_spec_params("alice", workers=2, shards=2))
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert spec.horizon == pytest.approx(720.0)
        assert spec.cost_hours == pytest.approx(0.4)

    @pytest.mark.parametrize("bad", [
        {"tenant": ""},
        {"mode": "psychic"},
        {"hours": 0.0},
        {"hours": -1.0},
        {"workers": 0},
        {"shards": 0},
        {"seed_corpus": 0},
        {"size": "galactic"},
        {"mode": "model"},  # model mode requires a checkpoint path
    ])
    def test_validation(self, bad):
        params = _spec_params("alice")
        params.update(bad)
        with pytest.raises(SpecError):
            CampaignSpec(**params)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown"):
            CampaignSpec.from_dict(_spec_params("alice", bogus=1))


class TestSessionManager:
    def test_budget_reserve_refund_reject(self):
        sessions = SessionManager()
        sessions.ensure("alice", Quota(budget_hours=1.0))
        sessions.reserve("alice", 0.7)
        assert sessions.get("alice").budget_remaining == pytest.approx(0.3)
        with pytest.raises(QuotaError):
            sessions.reserve("alice", 0.5)
        assert sessions.get("alice").rejected == 1
        sessions.refund("alice", 0.2)
        assert sessions.get("alice").budget_remaining == pytest.approx(0.5)
        sessions.reserve("alice", 0.5)

    def test_explicit_quota_redeclares(self):
        sessions = SessionManager()
        sessions.ensure("alice")
        assert sessions.get("alice").quota == Quota()
        sessions.ensure("alice", Quota(priority=9, budget_hours=2.0))
        assert sessions.get("alice").quota.priority == 9
        # A later ensure without a quota keeps the declared one.
        sessions.ensure("alice")
        assert sessions.get("alice").quota.priority == 9

    def test_quota_validation(self):
        with pytest.raises(QuotaError):
            Quota(max_concurrent=0)
        with pytest.raises(QuotaError):
            Quota(budget_hours=0.0)


class TestServiceLifecycle:
    def test_submit_advance_result(self):
        server = ServiceServer(fleet_size=2)
        job_id = _submit(server, "alice")
        status = server.handle(Request("GET", f"/campaigns/{job_id}"))
        assert status.body["job"]["state"] == "queued"
        # Result before completion is a conflict, not an error.
        early = server.handle(Request("GET", f"/campaigns/{job_id}/result"))
        assert early.status == 409
        summary = _advance(server)
        assert summary["done"] == [job_id]
        result = _result(server, job_id)
        assert result["final_edges"] > 0
        assert result["executions"] > 0
        assert result["mode"] == "oracle"

    def test_quota_rejection_is_403(self):
        server = ServiceServer()
        _submit(server, "alice", budget_hours=0.3)
        response = server.handle(
            Request("POST", "/campaigns", _spec_params("alice"))
        )
        assert response.status == 403
        assert "budget" in response.body["error"]
        tenant = server.handle(Request("GET", "/tenants/alice"))
        assert tenant.body["rejected"] == 1

    def test_fleet_cap_rejects_oversized_campaign(self):
        server = ServiceServer(fleet_size=2)
        response = server.handle(
            Request("POST", "/campaigns", _spec_params("alice", workers=3))
        )
        assert response.status == 400

    def test_priority_admission_and_backfill(self):
        # One slot: alice submits first, but bob outranks her; carol's
        # 2-worker job cannot fit and is backfilled past.
        server = ServiceServer(fleet_size=1, time_slice=120.0)
        first = _submit(server, "alice")
        second = _submit(server, "bob", priority=5)
        summary = _advance(server, until=60.0)
        assert summary["running"] == [second]
        assert summary["queued"] == [first]
        summary = _advance(server)
        assert set(summary["done"]) == {first, second}
        # bob finished strictly before alice started.
        bob = server.orchestrator.get(second)
        alice = server.orchestrator.get(first)
        assert alice.admitted_at >= bob.finished_at

    def test_max_concurrent_holds_jobs_back(self):
        server = ServiceServer(fleet_size=4, time_slice=120.0)
        jobs = [
            _submit(server, "alice", max_concurrent=1, seed=seed)
            for seed in (1, 2)
        ]
        summary = _advance(server, until=60.0)
        assert summary["running"] == [jobs[0]]
        assert summary["queued"] == [jobs[1]]
        _advance(server)
        tenant = server.handle(Request("GET", "/tenants/alice"))
        assert tenant.body["completed"] == 2

    def test_cancel_queued_refunds_fully(self):
        server = ServiceServer(fleet_size=1)
        _submit(server, "alice")
        queued = _submit(server, "alice")  # max_concurrent=2, one slot
        cancel = server.handle(
            Request("POST", f"/campaigns/{queued}/cancel")
        )
        assert cancel.ok
        assert cancel.body["job"]["state"] == "cancelled"
        tenant = server.handle(Request("GET", "/tenants/alice"))
        assert tenant.body["budget_remaining"] == pytest.approx(
            tenant.body["quota"]["budget_hours"] - 0.2
        )

    def test_cancel_running_yields_partial_result(self):
        server = ServiceServer(time_slice=120.0)
        job_id = _submit(server, "alice")
        _advance(server, until=240.0)
        cancel = server.handle(Request("POST", f"/campaigns/{job_id}/cancel"))
        assert cancel.ok
        _advance(server, until=360.0)
        job = server.orchestrator.get(job_id)
        assert job.state == "cancelled"
        result = _result(server, job_id)
        assert result["partial"] is True
        # Unused horizon came back to the budget.
        tenant = server.handle(Request("GET", "/tenants/alice"))
        assert tenant.body["refunded_hours"] > 0.0

    def test_cancel_missing_campaign_is_404(self):
        response = ServiceServer().handle(
            Request("POST", "/campaigns/job-99/cancel")
        )
        assert response.status == 404

    def test_progress_streaming_since(self):
        server = ServiceServer()
        job_id = _submit(server, "alice")
        _advance(server)
        full = server.handle(
            Request("GET", f"/campaigns/{job_id}/progress")
        ).body
        assert full["observations"]
        cut = full["observations"][1][0]
        tail = server.handle(Request(
            "GET", f"/campaigns/{job_id}/progress", {"since": cut}
        )).body
        assert tail["observations"] == [
            row for row in full["observations"] if row[0] > cut
        ]
        # Edge counts are cumulative, hence monotone.
        edges = [row[1] for row in full["observations"]]
        assert edges == sorted(edges)

    def test_progress_series_slice(self):
        server = ServiceServer()
        job_id = _submit(server, "alice")
        _advance(server)
        body = server.handle(Request(
            "GET", f"/campaigns/{job_id}/progress",
            {"series": "fuzz.corpus"},
        )).body
        assert body["series"]
        assert all("fuzz.corpus" in key for key in body["series"])

    def test_health_snapshot_and_report(self):
        server = ServiceServer()
        _submit(server, "alice")
        _submit(server, "bob", priority=2)
        _advance(server)
        health = server.handle(Request("GET", "/health")).body
        assert health == service_health(server)
        assert {s["tenant"] for s in health["sessions"]} == {"alice", "bob"}
        assert all(job["state"] == "done" for job in health["jobs"])
        report = format_service_health(health)
        assert "=== service health ===" in report
        assert "--- tenants ---" in report and "--- campaigns ---" in report
        assert "alice" in report and "bob" in report


class TestServiceDeterminism:
    def test_multiplexed_equals_standalone(self):
        """The acceptance bar: a campaign's result signature is identical
        whether run alone via the fuzz builders or interleaved with other
        tenants on a small fleet."""
        params = _spec_params("alice", seed=11)
        kernel = build_kernel("6.8", seed=1, size=params["size"])
        config = fuzz_campaign_config(
            params["hours"], params["seed"], params["seed_corpus"]
        )
        run_seed = fuzz_run_seed(params["seed"], kernel.version)
        standalone = build_fuzz_loop(
            kernel, None, run_seed, config, oracle=True
        ).run()

        server = ServiceServer(fleet_size=2, time_slice=90.0)
        job_id = _submit(server, "alice", seed=params["seed"])
        _submit(server, "bob", seed=5)
        _submit(server, "carol", seed=7, hours=0.1)
        _advance(server)
        result = _result(server, job_id)
        assert result["signature"] == encode_signature(
            standalone.signature()
        )

    def test_kill_and_two_independent_resumes(self, tmp_path):
        """Service-level resume: interrupt mid-run, restore the same
        bytes twice, and the two futures match byte-for-byte."""
        server = ServiceServer(fleet_size=2, time_slice=90.0)
        jobs = [
            _submit(server, "alice", seed=21),
            _submit(server, "bob", seed=22, priority=1),
        ]
        _advance(server, until=0.8 * 720.0)
        save_service(tmp_path, server)
        assert service_exists(tmp_path)

        outcomes = []
        for _ in range(2):
            resumed = load_service(tmp_path)
            _advance(resumed)
            outcomes.append(json.dumps(
                [_result(resumed, job_id) for job_id in jobs],
                sort_keys=True,
            ))
        assert outcomes[0] == outcomes[1]
        # Degradation accounting shows these runs actually resumed.
        doc = json.loads(outcomes[0])
        assert all(
            entry["degradation"]["inference_failures"] >= 0
            for entry in doc
        )

    def test_checkpoint_kind_is_validated(self, tmp_path):
        from repro.snowplow.checkpointing import save_checkpoint

        save_checkpoint(tmp_path / "service.json", {"kind": "pickle"})
        with pytest.raises(CheckpointError, match="not a service"):
            load_service(tmp_path)

    def test_fault_plan_round_trips_through_spec(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=5).with_rate(
            "exec_timeout", 0.01
        ).with_campaign_crash(300.0)
        payload = plan.to_dict()
        assert FaultPlan.from_dict(payload).to_dict() == payload
        server = ServiceServer()
        job_id = _submit(server, "alice", faults=payload)
        _advance(server)
        result = _result(server, job_id)
        assert result["final_edges"] > 0
