"""Tests for table/figure formatting."""

import numpy as np

from repro.fuzzer.crash import TriagedCrash
from repro.fuzzer.directed import DirectedResult
from repro.fuzzer.loop import FuzzObservation, FuzzStats
from repro.kernel.bugs import CrashKind
from repro.snowplow.campaign import CoverageCampaignResult, CrashCampaignResult
from repro.snowplow.reporting import (
    format_fig6,
    format_table2,
    format_table3,
    format_table5,
)
from repro.syzlang.program import Program


def make_stats(series):
    """FuzzStats from (time, edges) pairs."""
    stats = FuzzStats()
    for time, edges in series:
        stats.observations.append(
            FuzzObservation(time=time, edges=edges, blocks=edges,
                            executions=int(time))
        )
    return stats


def make_campaign(snow_series, syz_series, horizon=100.0):
    return CoverageCampaignResult(
        kernel_version="6.8",
        horizon=horizon,
        syzkaller_runs=[make_stats(s) for s in syz_series],
        snowplow_runs=[make_stats(s) for s in snow_series],
    )


class TestCoverageCampaignMetrics:
    def test_improvement_percentage(self):
        result = make_campaign(
            [[(0, 0), (100, 110)]], [[(0, 0), (100, 100)]]
        )
        assert result.coverage_improvement == 10.0

    def test_speedup_when_faster(self):
        # Snowplow reaches 100 edges at t=25; Syzkaller at t=100.
        snow = [[(0, 0), (25, 100), (100, 110)]]
        syz = [[(0, 0), (100, 100)]]
        result = make_campaign(snow, syz)
        assert result.speedup >= 3.5

    def test_speedup_below_one_when_never_reaching(self):
        snow = [[(0, 0), (100, 50)]]
        syz = [[(0, 0), (100, 100)]]
        result = make_campaign(snow, syz)
        assert result.speedup == 0.0

    def test_bands_overlap(self):
        snow = [[(0, 0), (100, 200)], [(0, 0), (100, 220)]]
        syz = [[(0, 0), (100, 100)], [(0, 0), (100, 120)]]
        result = make_campaign(snow, syz)
        # Snowplow min (200-line) > Syzkaller max (120-line) late on.
        assert not result.bands_overlap_after(90.0)

    def test_discovery_auc_ratio(self):
        # Snowplow holds more coverage throughout -> ratio > 1.
        snow = [[(0, 0), (50, 100), (100, 110)]]
        syz = [[(0, 0), (50, 40), (100, 110)]]
        result = make_campaign(snow, syz)
        assert result.discovery_auc_ratio() > 1.0
        equal = make_campaign(syz, syz)
        assert equal.discovery_auc_ratio() == 1.0

    def test_fig6_text(self):
        result = make_campaign(
            [[(0, 0), (100, 110)]], [[(0, 0), (100, 100)]]
        )
        text = format_fig6([result])
        assert "Linux 6.8" in text
        assert "speedup" in text


def crash(signature, new=True, repro=True, category=CrashKind.GPF):
    return TriagedCrash(
        signature=signature,
        category=category,
        is_new=new,
        crashing_program=Program(),
        reproducer=Program() if repro else None,
    )


class TestCrashTables:
    def test_table2_counts(self):
        result = CrashCampaignResult(
            kernel_version="6.8",
            snowplow_crashes=[
                [crash("a"), crash("b"), crash("k", new=False)],
                [crash("c")],
            ],
            syzkaller_crashes=[[crash("k", new=False)], []],
        )
        rows = result.table2_rows()
        assert rows["snowplow_new"] == [2, 1]
        assert rows["snowplow_known"] == [1, 0]
        assert rows["syzkaller_new"] == [0, 0]
        assert rows["syzkaller_known"] == [1, 0]
        text = format_table2(result)
        assert "New Crashes" in text and "Total" in text

    def test_unique_new_crashes_dedup(self):
        result = CrashCampaignResult(
            kernel_version="6.8",
            snowplow_crashes=[[crash("a")], [crash("a"), crash("b")]],
            syzkaller_crashes=[[], []],
        )
        unique = result.unique_new_crashes()
        assert {c.signature for c in unique} == {"a", "b"}

    def test_table3_categories_and_totals(self):
        crashes = [
            crash("a", category=CrashKind.GPF),
            crash("b", category=CrashKind.OOB, repro=False),
            crash("c", category=CrashKind.RCU_STALL),
        ]
        text = format_table3(crashes)
        assert "General protection fault" in text
        assert "Out of bounds access" in text
        # RCU stalls fold into "Other" per Table 3's categories.
        assert "Other" in text
        assert text.strip().endswith("2    1")


class TestTable5:
    def test_speedup_column(self):
        results = {
            5: {
                "syzdirect": [
                    DirectedResult(5, True, 100.0, 10),
                    DirectedResult(5, True, 300.0, 30),
                ],
                "snowplow_d": [
                    DirectedResult(5, True, 20.0, 2),
                    DirectedResult(5, True, 20.0, 2),
                ],
            },
            9: {
                "syzdirect": [DirectedResult(9, False, None, 99)],
                "snowplow_d": [DirectedResult(9, True, 50.0, 5)],
            },
            11: {
                "syzdirect": [DirectedResult(11, False, None, 9)],
                "snowplow_d": [DirectedResult(11, False, None, 9)],
            },
        }
        text = format_table5(results, "6.8")
        assert "10.0" in text      # 200/20 speedup
        assert "INF" in text       # snowplow-only target
        assert "NA" in text        # unreached target
        assert "Subtotal" in text
