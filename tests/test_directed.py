"""Tests for directed fuzzing (SyzDirect-like + Snowplow-D plumbing)."""

import pytest

from repro.errors import CampaignError
from repro.fuzzer.directed import DirectedFuzzer, SyzDirectLocalizer
from repro.fuzzer.localizer import RandomLocalizer
from repro.kernel import BlockRole, Executor
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator
from repro.vclock import CostModel, VirtualClock


def shallow_target(kernel):
    """A body block near some handler entry — an easy target."""
    for name in sorted(kernel.handlers):
        cfg = kernel.handlers[name]
        for block_id in cfg.block_ids():
            block = kernel.blocks[block_id]
            if block.role is BlockRole.BODY and cfg.depth_of(block_id) <= 1:
                return block_id
    raise AssertionError("no shallow block found")


def build_directed(kernel, target, horizon=7200.0, seed=0, localizer=None):
    executor = Executor(kernel)
    generator = ProgramGenerator(kernel.table, make_rng(seed))
    fuzzer = DirectedFuzzer(
        kernel=kernel,
        target_block=target,
        executor=executor,
        generator=generator,
        localizer=localizer
        or SyzDirectLocalizer(kernel.handler_of_block[target]),
        clock=VirtualClock(horizon=horizon),
        cost=CostModel(),
        rng=make_rng(seed + 1),
    )
    fuzzer.seed(generator.seed_corpus(10))
    return fuzzer


class TestSyzDirectLocalizer:
    def test_prefers_target_call(self, kernel, generator):
        program = generator.random_program()
        target_name = program.calls[-1].spec.full_name
        localizer = SyzDirectLocalizer(target_name, k=4)
        rng = make_rng(0)
        paths = localizer.localize(program, None, None, rng)
        target_indices = {
            i for i, call in enumerate(program.calls)
            if call.spec.full_name == target_name
        }
        assert paths
        assert all(path.call_index in target_indices for path in paths)

    def test_falls_back_to_any_site(self, kernel, generator):
        program = generator.random_program()
        localizer = SyzDirectLocalizer("nonexistent$call", k=2)
        paths = localizer.localize(program, None, None, make_rng(1))
        assert paths  # falls through to the full site pool


class TestDirectedFuzzer:
    def test_unknown_target_rejected(self, kernel):
        executor = Executor(kernel)
        generator = ProgramGenerator(kernel.table, make_rng(0))
        with pytest.raises(CampaignError):
            DirectedFuzzer(
                kernel=kernel, target_block=10**9, executor=executor,
                generator=generator,
                localizer=RandomLocalizer(2),
                clock=VirtualClock(horizon=10.0), cost=CostModel(),
                rng=make_rng(1),
            )

    def test_run_without_seed_rejected(self, kernel):
        executor = Executor(kernel)
        generator = ProgramGenerator(kernel.table, make_rng(0))
        fuzzer = DirectedFuzzer(
            kernel=kernel, target_block=shallow_target(kernel),
            executor=executor, generator=generator,
            localizer=RandomLocalizer(2),
            clock=VirtualClock(horizon=10.0), cost=CostModel(),
            rng=make_rng(1),
        )
        with pytest.raises(CampaignError):
            fuzzer.run()

    def test_reaches_shallow_target(self, kernel):
        target = shallow_target(kernel)
        fuzzer = build_directed(kernel, target, horizon=4 * 3600.0)
        result = fuzzer.run()
        assert result.reached
        assert result.time_to_target is not None
        assert result.time_to_target <= 4 * 3600.0

    def test_gives_up_at_horizon(self, kernel):
        # The ATA crash block is deep; a tiny horizon cannot reach it.
        target = kernel.bug_blocks["ata-oob"]
        fuzzer = build_directed(kernel, target, horizon=30.0)
        result = fuzzer.run()
        assert not result.reached
        assert result.time_to_target is None

    def test_target_call_planted(self, kernel):
        """The resource-aware planting must add the target syscall (and
        its producers) to mutated tests."""
        target = kernel.bug_blocks["ata-oob"]
        fuzzer = build_directed(kernel, target, horizon=600.0, seed=5)
        base = fuzzer.corpus.entries[0].program.clone()
        fuzzer._insert_target_call(base)
        names = [call.spec.full_name for call in base.calls]
        assert "ioctl$SCSI_IOCTL_SEND_COMMAND" in names
        base.validate(kernel.table)
        # Its scsi_fd consumer must be satisfiable: a producer exists.
        assert "open$scsi" in names

    def test_approach_metric(self, kernel):
        target = shallow_target(kernel)
        fuzzer = build_directed(kernel, target, horizon=60.0)
        from repro.kernel.coverage import Coverage

        assert fuzzer._approach(Coverage.from_traces([[target]])) == 0
        empty = fuzzer._approach(Coverage())
        assert empty >= 10**9
