"""Tests for virtual time accounting."""

import pytest

from repro.vclock import CostModel, VirtualClock


class TestVirtualClock:
    def test_advance_accumulates(self):
        clock = VirtualClock(horizon=100.0)
        clock.advance(10.0, "execution")
        clock.advance(5.0, "execution")
        clock.advance(1.0, "triage")
        assert clock.now == 16.0
        assert clock.charges["execution"] == 15.0
        assert clock.charges["triage"] == 1.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_expiry(self):
        clock = VirtualClock(horizon=10.0)
        assert not clock.expired()
        clock.advance(10.0)
        assert clock.expired()

    def test_remaining_clamps_at_zero(self):
        clock = VirtualClock(horizon=5.0)
        clock.advance(9.0)
        assert clock.remaining() == 0.0

    def test_default_horizon_is_infinite(self):
        clock = VirtualClock()
        clock.advance(1e12)
        assert not clock.expired()


class TestCostModel:
    def test_scaled_preserves_paper_latency_ratio(self):
        cost = CostModel.scaled()
        # Inference latency should stay ~269 test-execution slots, the
        # paper's 0.69 s at 390 tests/s.
        ratio = cost.inference_latency / cost.test_execution
        assert 250 < ratio < 290

    def test_paper_rates(self):
        cost = CostModel.paper()
        assert cost.inference_latency == pytest.approx(0.69)
        assert 1.0 / cost.test_execution == pytest.approx(390.0)

    def test_async_inference_free_on_loop(self):
        assert CostModel.scaled().inference_charge == 0.0

    def test_blocking_ablation_charges_latency(self):
        cost = CostModel.scaled().blocking_inference()
        assert cost.inference_charge == cost.inference_latency
        # Other costs unchanged.
        assert cost.test_execution == CostModel.scaled().test_execution
