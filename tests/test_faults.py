"""Tests for the failure model: deterministic fault injection, the
circuit breaker, the executor watchdog, and campaign checkpoint/resume.

The tentpole guarantees under test:

- a fault schedule is reproducible from a single seed;
- the breaker walks closed → open → half-open → closed;
- hung calls become structured timeouts plus VM-restart accounting;
- a loop restored from a checkpoint continues bit-identically;
- a campaign under faults degrades gracefully instead of collapsing.
"""

import json

import pytest

from repro.errors import (
    CheckpointError,
    ExecutionError,
    ExecutorHang,
    InferenceTimeout,
)
from repro.faults import (
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultWindow,
)
from repro.kernel import Executor
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.pmm.serve import InferenceService
from repro.rng import derive_seed, split
from repro.snowplow import (
    CampaignConfig,
    CheckpointStore,
    load_checkpoint,
    save_checkpoint,
    train_pmm,
)
from repro.snowplow.campaign import (
    _build_snowplow_loop,
    _build_syzkaller_loop,
    run_fault_tolerance_campaign,
)
from repro.snowplow.checkpointing import loop_state, restore_loop_state
from repro.syzlang import ProgramGenerator
from repro.vclock import CostModel


@pytest.fixture(scope="module")
def trained(kernel):
    return train_pmm(
        kernel,
        seed=0,
        corpus_size=20,
        dataset_config=DatasetConfig(mutations_per_test=25, seed=3),
        pmm_config=PMMConfig(
            dim=16, gnn_layers=2, asm_layers=1, asm_heads=2, seed=5
        ),
        train_config=TrainConfig(
            epochs=1, batch_size=8, max_examples_per_epoch=80,
            max_validation_examples=20,
        ),
    )


def _stats_signature(stats):
    """Everything observable about a run, for bit-identity comparisons."""
    return (
        stats.executions,
        stats.mutations,
        [
            (obs.time, obs.edges, obs.blocks, obs.executions)
            for obs in stats.observations
        ],
        [crash.signature for crash in stats.crashes],
        stats.exec_timeouts,
        stats.vm_restarts,
        stats.inference_failures,
        stats.heuristic_fallbacks,
        stats.corpus_write_retries,
        stats.corpus_size,
    )


class TestFaultPlan:
    def test_empty_plan_never_fires(self):
        injector = FaultInjector(FaultPlan.none())
        assert not any(
            injector.fires("inference", float(t)) for t in range(100)
        )
        assert injector.total_injected() == 0

    def test_window_fires_inside_only(self):
        plan = FaultPlan().with_window("inference", 10.0, 20.0)
        injector = FaultInjector(plan)
        assert not injector.fires("inference", 9.9)
        assert injector.fires("inference", 10.0)
        assert injector.fires("inference", 19.9)
        assert not injector.fires("inference", 20.0)
        assert injector.injected["inference"] == 2
        assert injector.window_end("inference", 15.0) == 20.0

    def test_windows_are_per_site(self):
        plan = FaultPlan().with_window("inference", 10.0, 20.0)
        injector = FaultInjector(plan)
        assert not injector.fires("executor", 15.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            FaultWindow("inference", 5.0, 1.0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(rates={"executor": 1.5})

    def test_rate_sequence_reproducible_from_seed(self):
        plan = FaultPlan(seed=99).with_rate("executor", 0.3)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        draws_a = [a.fires("executor", 0.0) for _ in range(200)]
        draws_b = [b.fires("executor", 0.0) for _ in range(200)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_sites_draw_independent_streams(self):
        """Traffic at one site must not shift another site's schedule."""
        plan = FaultPlan(seed=7).with_rate("executor", 0.3).with_rate(
            "inference", 0.3
        )
        lone = FaultInjector(plan)
        draws_lone = [lone.fires("executor", 0.0) for _ in range(100)]
        mixed = FaultInjector(plan)
        draws_mixed = []
        for _ in range(100):
            mixed.fires("inference", 0.0)  # interleaved other-site traffic
            draws_mixed.append(mixed.fires("executor", 0.0))
        assert draws_lone == draws_mixed

    def test_crash_time_is_first_crash_window(self):
        plan = (
            FaultPlan()
            .with_window("campaign_crash", 500.0, 501.0)
            .with_window("campaign_crash", 100.0, 101.0)
        )
        assert plan.crash_time() == 100.0
        assert FaultPlan.none().crash_time() is None

    def test_state_roundtrip_resumes_mid_stream(self):
        plan = FaultPlan(seed=3).with_rate("executor", 0.4)
        original = FaultInjector(plan)
        for _ in range(50):
            original.fires("executor", 0.0)
        state = json.loads(json.dumps(original.state()))
        resumed = FaultInjector(plan)
        resumed.restore(state)
        tail_original = [original.fires("executor", 0.0) for _ in range(100)]
        tail_resumed = [resumed.fires("executor", 0.0) for _ in range(100)]
        assert tail_original == tail_resumed
        assert resumed.injected == original.injected | resumed.injected

    def test_cluster_fault_helpers_target_worker_sites(self):
        plan = (
            FaultPlan()
            .with_worker_kill(2, 600.0)
            .with_worker_hang(0, 100.0, 200.0)
            .with_hub_partition(1, 300.0, 400.0)
            .with_shard_loss(3, 500.0, 700.0)
        )
        assert {window.site for window in plan.windows} == {
            "worker_kill:2", "worker_hang:0",
            "hub_partition:1", "shard_loss:3",
        }
        injector = FaultInjector(plan)
        assert injector.in_window("worker_hang:0", 150.0)
        assert not injector.in_window("worker_hang:1", 150.0)
        assert injector.in_window("hub_partition:1", 300.0)
        assert injector.in_window("shard_loss:3", 699.0)

    def test_kill_times_lists_only_this_workers_kills(self):
        plan = (
            FaultPlan()
            .with_worker_kill(0, 100.0)
            .with_worker_kill(0, 900.0)
            .with_worker_kill(1, 500.0)
        )
        assert plan.kill_times(0) == (100.0, 900.0)
        assert plan.kill_times(1) == (500.0,)
        assert plan.kill_times(2) == ()

    def test_hang_start_is_process_scoped_lookup(self):
        plan = FaultPlan().with_worker_hang(0, 100.0, 200.0)
        assert plan.hang_start(0, 150.0) == 100.0
        assert plan.hang_start(0, 99.0) is None
        assert plan.hang_start(0, 200.0) is None
        assert plan.hang_start(1, 150.0) is None


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=100.0)
        for time in (1.0, 2.0):
            breaker.record_failure(time)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(50.0)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=100.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.record_success(3.0)
        breaker.record_failure(4.0)
        breaker.record_failure(5.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=100.0)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        # Reset timeout elapsed: exactly one probe is admitted.
        assert breaker.allow(100.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(101.0)
        breaker.record_success(110.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(111.0)

    def test_half_open_probe_failure_retrips(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_failure(110.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow(150.0)

    def test_cancel_probe_releases_reservation(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.cancel_probe()
        assert breaker.allow(11.0)  # probe slot free again

    def test_transitions_recorded(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(1.0)
        breaker.allow(11.0)
        breaker.record_success(12.0)
        assert [name for _, name in breaker.transitions] == [
            "open", "half_open", "closed"
        ]

    def test_state_roundtrip(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        state = json.loads(json.dumps(breaker.state_dict()))
        clone = CircuitBreaker(failure_threshold=2, reset_timeout=10.0)
        clone.restore(state)
        assert clone.state is BreakerState.OPEN
        assert clone.trips == breaker.trips
        assert clone.transitions == breaker.transitions

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)

    def test_clock_jump_past_many_probe_windows_admits_one_probe(self):
        """A virtual-clock jump spanning several reset timeouts must
        still admit exactly one half-open probe, not a burst."""
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        # now jumps 5 reset-timeouts ahead in one tick
        assert breaker.allow(50.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(50.0)
        assert not breaker.allow(55.0)
        # the single probe's verdict decides the state
        breaker.record_success(60.0)
        assert breaker.state is BreakerState.CLOSED

    def test_stale_success_does_not_close_open_breaker(self):
        """A success recorded for a request issued before the trip must
        not close the breaker (that would skip the probe protocol)."""
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        breaker.record_success(1.0)  # pre-trip request completing late
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(5.0)

    def test_success_without_reserved_probe_keeps_half_open(self):
        """After cancel_probe, a stale success must not close the
        breaker: only the reserved probe's result counts."""
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.cancel_probe()
        breaker.record_success(11.0)  # no probe in flight
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow(12.0)  # probe slot still available
        breaker.record_success(13.0)
        assert breaker.state is BreakerState.CLOSED


class TestWatchdog:
    def test_injected_hang_becomes_structured_timeout(self, kernel, generator):
        plan = FaultPlan(seed=1).with_window("executor", 0.0, 1e9)
        executor = Executor(kernel, injector=FaultInjector(plan))
        result = executor.run(generator.random_program(length=3), now=1.0)
        assert result.timed_out
        assert result.timeout.reason == "injected_hang"
        assert result.timeout.call_index == 0
        assert result.timeout.steps >= 1
        assert result.crash is None
        assert executor.vm_restarts == 1
        # Coverage up to the kill is kept (KCOV survives the watchdog).
        assert result.coverage.blocks

    def test_hang_truncates_program(self, kernel, generator):
        plan = FaultPlan(seed=1).with_window("executor", 0.0, 1e9)
        executor = Executor(kernel, injector=FaultInjector(plan))
        result = executor.run(generator.random_program(length=4), now=0.0)
        # The hung call never returns; later calls never run.
        assert len(result.coverage.call_traces) == 1
        assert result.retvals == []

    def test_no_injector_no_timeouts(self, kernel, generator):
        executor = Executor(kernel)
        result = executor.run(generator.random_program(length=3))
        assert not result.timed_out
        assert executor.vm_restarts == 0

    def test_executor_hang_is_timeout_error(self):
        assert issubclass(ExecutorHang, ExecutionError)
        assert issubclass(ExecutorHang, TimeoutError)
        assert issubclass(InferenceTimeout, TimeoutError)

    def test_fault_free_injector_changes_nothing(self, kernel, generator):
        """An attached but empty plan must not perturb execution."""
        program = generator.random_program(length=4)
        plain = Executor(kernel, seed=7).run(program)
        injected = Executor(
            kernel, seed=7, injector=FaultInjector(FaultPlan.none())
        ).run(program, now=123.0)
        assert plain.coverage.blocks == injected.coverage.blocks
        assert plain.retvals == injected.retvals


class TestCheckpointFiles:
    def test_save_load_roundtrip(self, tmp_path):
        state = {"clock": {"now": 5.0}, "format_version": 1, "x": [1, 2]}
        path = save_checkpoint(tmp_path / "ck.json", state)
        assert load_checkpoint(path) == state

    def test_missing_checkpoint_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.json")

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = save_checkpoint(
            tmp_path / "ck.json", {"clock": {"now": 1.0}}
        )
        text = path.read_text().replace('"now": 1.0', '"now": 2.0')
        path.write_text(text)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_store_retention(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for now in (100, 200, 300):
            store.save({"clock": {"now": float(now)}})
        remaining = sorted(p.name for p in tmp_path.glob("ckpt_*.json"))
        assert len(remaining) == 2
        assert store.load_latest()["clock"]["now"] == 300.0

    def test_store_gives_up_on_persistent_write_failure(self, tmp_path):
        plan = FaultPlan().with_window("checkpoint_store", 0.0, 1e9)
        store = CheckpointStore(tmp_path, injector=FaultInjector(plan))
        with pytest.raises(CheckpointError):
            store.save({"clock": {"now": 50.0}})


class TestCheckpointResume:
    def _seeded_loop(self, kernel, run_seed, config, injector=None):
        loop = _build_syzkaller_loop(kernel, run_seed, config, injector)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "s")
        ).seed_corpus(8)
        loop.seed(seeds)
        return loop

    def test_resume_is_bit_identical(self, kernel):
        """Two restores of one checkpoint replay identical remainders."""
        config = CampaignConfig(
            horizon=2400.0, runs=1, seed=23, seed_corpus_size=8,
            sample_interval=300.0,
        )
        run_seed = derive_seed(23, "bit")
        loop = self._seeded_loop(kernel, run_seed, config)
        loop.run_until(1200.0)
        state = json.loads(json.dumps(loop_state(loop)))
        finals = []
        for _ in range(2):
            fresh = _build_syzkaller_loop(kernel, run_seed, config)
            restore_loop_state(fresh, state)
            fresh.run_until(config.horizon)
            finals.append(fresh.finalize())
        assert _stats_signature(finals[0]) == _stats_signature(finals[1])
        assert finals[0].resumes == 1

    def test_resume_matches_uninterrupted_baseline_loop(self, kernel):
        """The plain (inference-free) loop has no in-flight state, so a
        resumed run must equal the uninterrupted one exactly."""
        config = CampaignConfig(
            horizon=1800.0, runs=1, seed=29, seed_corpus_size=8,
            sample_interval=300.0,
        )
        run_seed = derive_seed(29, "exact")
        continuous = self._seeded_loop(kernel, run_seed, config)
        continuous.run_until(900.0)
        state = json.loads(json.dumps(loop_state(continuous)))
        continuous.run_until(config.horizon)
        uninterrupted = continuous.finalize()
        resumed_loop = _build_syzkaller_loop(kernel, run_seed, config)
        restore_loop_state(resumed_loop, state)
        resumed_loop.run_until(config.horizon)
        resumed = resumed_loop.finalize()
        signature = _stats_signature(uninterrupted)
        resumed_signature = _stats_signature(resumed)
        assert signature == resumed_signature

    def test_resume_preserves_fault_schedule(self, kernel):
        """The injector's draw streams resume mid-sequence too."""
        plan = FaultPlan(seed=5).with_rate("executor", 0.05).with_rate(
            "corpus_store", 0.05
        )
        config = CampaignConfig(
            horizon=1800.0, runs=1, seed=31, seed_corpus_size=8,
            sample_interval=300.0,
        )
        run_seed = derive_seed(31, "sched")
        continuous = self._seeded_loop(
            kernel, run_seed, config, FaultInjector(plan)
        )
        continuous.run_until(900.0)
        state = json.loads(json.dumps(loop_state(continuous)))
        continuous.run_until(config.horizon)
        uninterrupted = continuous.finalize()
        fresh = _build_syzkaller_loop(
            kernel, run_seed, config, FaultInjector(plan)
        )
        restore_loop_state(fresh, state)
        fresh.run_until(config.horizon)
        resumed = fresh.finalize()
        assert _stats_signature(uninterrupted) == _stats_signature(resumed)
        assert resumed.vm_restarts == uninterrupted.vm_restarts
        assert resumed.vm_restarts > 0

    def test_restore_rejects_wrong_kernel(self, kernel, kernel_69):
        config = CampaignConfig(
            horizon=600.0, runs=1, seed=3, seed_corpus_size=6,
        )
        run_seed = derive_seed(3, "wrong")
        loop = self._seeded_loop(kernel, run_seed, config)
        loop.run_until(300.0)
        state = loop_state(loop)
        other = _build_syzkaller_loop(kernel_69, run_seed, config)
        with pytest.raises(CheckpointError):
            restore_loop_state(other, state)


class TestSnowplowResume:
    def test_snowplow_resume_bit_identical(self, kernel, trained):
        config = CampaignConfig(
            horizon=2400.0, runs=1, seed=11, seed_corpus_size=8,
            sample_interval=300.0,
        )
        run_seed = derive_seed(11, "snow")
        loop = _build_snowplow_loop(kernel, trained, run_seed, config)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "s")
        ).seed_corpus(8)
        loop.seed([p.clone() for p in seeds])
        loop.run_until(1200.0)
        pending = loop.service.pending_count()
        state = json.loads(json.dumps(loop_state(loop)))
        finals = []
        for _ in range(2):
            fresh = _build_snowplow_loop(kernel, trained, run_seed, config)
            restore_loop_state(fresh, state)
            fresh.run_until(config.horizon)
            finals.append(fresh.finalize())
        assert _stats_signature(finals[0]) == _stats_signature(finals[1])
        # In-flight predictions died with the worker and are accounted.
        assert finals[0].inference_failures >= pending


class TestFaultToleranceCampaign:
    def test_acceptance_scenario(self, kernel, trained, tmp_path):
        """The ISSUE acceptance criterion: inference outage + VM
        restarts + one mid-run crash/resume, fixed seed, graceful
        degradation with a visible failure ledger."""
        config = CampaignConfig(
            horizon=2400.0, runs=1, seed=11, seed_corpus_size=10,
            sample_interval=300.0,
        )
        plan = (
            FaultPlan(seed=42)
            .with_rate("executor", 0.01)
            .with_rate("corpus_store", 0.05)
            .with_window("inference", 600.0, 1200.0)
            .with_window("campaign_crash", 1500.0, 1501.0)
        )
        result = run_fault_tolerance_campaign(
            kernel, trained, config, plan,
            checkpoint_interval=600.0,
            checkpoint_dir=str(tmp_path / "ckpts"),
        )
        assert result.resumed
        assert result.crash_time == 1500.0
        assert result.checkpoints_taken >= 1
        faulted = result.faulted
        assert faulted.resumes == 1
        assert faulted.vm_restarts >= 1
        assert faulted.inference_failures > 0
        assert faulted.final_edges > 0
        # Graceful degradation, not collapse: the faulted run keeps a
        # healthy share of the fault-free coverage (the 15% acceptance
        # bound is asserted at bench scale; unit scale stays looser).
        assert result.coverage_ratio > 0.6
        assert list((tmp_path / "ckpts").glob("ckpt_*.json"))

    def test_campaign_determinism(self, kernel, trained):
        config = CampaignConfig(
            horizon=1200.0, runs=1, seed=17, seed_corpus_size=8,
            sample_interval=300.0,
        )
        plan = (
            FaultPlan(seed=9)
            .with_rate("executor", 0.02)
            .with_window("campaign_crash", 700.0, 701.0)
        )
        results = [
            run_fault_tolerance_campaign(
                kernel, trained, config, plan, checkpoint_interval=300.0
            )
            for _ in range(2)
        ]
        assert (
            _stats_signature(results[0].faulted)
            == _stats_signature(results[1].faulted)
        )
        assert (
            _stats_signature(results[0].fault_free)
            == _stats_signature(results[1].fault_free)
        )

    def test_breaker_trips_under_serving_outage(self, kernel, trained):
        """With laptop-scale latency the breaker visibly opens during an
        inference outage and recovers after it."""
        cost = CostModel(inference_latency=30.0)
        config = CampaignConfig(
            horizon=2400.0, runs=1, seed=19, seed_corpus_size=8,
            sample_interval=300.0, cost=cost,
        )
        plan = FaultPlan(seed=4).with_window("inference", 300.0, 1200.0)
        run_seed = derive_seed(19, "breaker")
        injector = FaultInjector(plan)
        loop = _build_snowplow_loop(
            kernel, trained, run_seed, config, injector=injector
        )
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "s")
        ).seed_corpus(8)
        loop.seed([p.clone() for p in seeds])
        stats = loop.run()
        assert loop.service.stats.timeouts > 0
        assert stats.breaker_trips >= 1
        assert stats.heuristic_fallbacks > 0
        # The outage ended mid-campaign; the half-open probe closed the
        # breaker again.
        assert stats.breaker_state == "closed"
        assert loop.service.stats.completed > 0
