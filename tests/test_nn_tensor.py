"""Autodiff tests: gradcheck properties on every op."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.nn import Tensor, concat, scatter_add, stack
from repro.nn.tensor import no_grad
from repro.rng import make_rng


def numeric_grad(func, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus = x.copy()
        plus[idx] += eps
        minus = x.copy()
        minus[idx] -= eps
        grad[idx] = (func(plus) - func(minus)) / (2 * eps)
        it.iternext()
    return grad


def check_grad(func, shape, seed=0, tol=1e-5):
    rng = make_rng(seed)
    x = rng.normal(size=shape)
    tensor = Tensor(x, requires_grad=True)
    func(tensor).backward()
    numeric = numeric_grad(lambda arr: func(Tensor(arr)).item(), x)
    assert np.abs(tensor.grad - numeric).max() < tol


class TestElementwiseGrads:
    def test_add_mul(self):
        check_grad(lambda x: ((x + 2.0) * (x * 3.0)).sum(), (3, 4))

    def test_sub_div(self):
        check_grad(lambda x: ((x - 1.0) / (x * x + 2.0)).sum(), (4,))

    def test_pow(self):
        check_grad(lambda x: ((x * x + 1.0) ** 1.5).sum(), (3,))

    def test_neg_rsub(self):
        check_grad(lambda x: (5.0 - (-x)).sum(), (2, 2))

    def test_relu(self):
        check_grad(lambda x: (x.relu() * x).sum(), (5, 5), seed=3)

    def test_sigmoid(self):
        check_grad(lambda x: x.sigmoid().sum(), (4, 3))

    def test_tanh(self):
        check_grad(lambda x: x.tanh().sum(), (6,))

    def test_exp_log(self):
        check_grad(lambda x: ((x * x + 1.0).log() + (x * 0.1).exp()).sum(), (4,))

    def test_sqrt(self):
        check_grad(lambda x: (x * x + 1.0).sqrt().sum(), (4,))


class TestBroadcastGrads:
    def test_broadcast_add(self):
        rng = make_rng(1)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_broadcast_mul_keepdim(self):
        rng = make_rng(2)
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (2, 1)
        assert np.allclose(b.grad[:, 0], a.data.sum(axis=1))


class TestMatmulGrads:
    def test_matmul_2d(self):
        check_grad(lambda x: (x @ x.transpose()).sum(), (3, 4))

    def test_matmul_batched(self):
        rng = make_rng(4)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        numeric = numeric_grad(
            lambda arr: float(np.matmul(arr, b.data).sum()), a.data
        )
        assert np.abs(a.grad - numeric).max() < 1e-5


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_grad(lambda x: (x.sum(axis=1) ** 2.0).sum(), (3, 4))

    def test_mean(self):
        check_grad(lambda x: (x.mean(axis=-1, keepdims=True) * x).sum(), (3, 4))

    def test_reshape(self):
        check_grad(lambda x: (x.reshape(2, 6) ** 2.0).sum(), (3, 4))

    def test_transpose_axes(self):
        check_grad(lambda x: (x.transpose(1, 0) * 2.0).sum(), (2, 5))

    def test_swapaxes(self):
        check_grad(lambda x: x.swapaxes(0, 1).sigmoid().sum(), (3, 4))

    def test_getitem(self):
        check_grad(lambda x: (x[1:] * 3.0).sum(), (4, 2))

    def test_softmax(self):
        weights = make_rng(11).normal(size=(3, 5))
        check_grad(lambda x: (x.softmax(axis=-1) * weights).sum(), (3, 5))

    def test_softmax_rows_sum_to_one(self):
        rng = make_rng(5)
        x = Tensor(rng.normal(size=(4, 7)) * 10)
        assert np.allclose(x.softmax(axis=-1).data.sum(axis=-1), 1.0)


class TestGatherScatter:
    def test_index_select_grad(self):
        rng = make_rng(6)
        table = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4])
        (table.index_select(idx) * 2.0).sum().backward()
        expected = np.zeros((5, 3))
        np.add.at(expected, idx, 2.0)
        assert np.allclose(table.grad, expected)

    def test_scatter_add_values(self):
        values = Tensor(np.ones((4, 2)), requires_grad=True)
        out = scatter_add(values, np.array([0, 1, 1, 2]), 3)
        assert np.allclose(out.data, [[1, 1], [2, 2], [1, 1]])
        out.sum().backward()
        assert np.allclose(values.grad, 1.0)

    def test_concat_grad(self):
        rng = make_rng(7)
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        (concat([a, b], axis=1) * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, 1.0)


class TestBCE:
    def test_matches_reference(self):
        rng = make_rng(8)
        logits = rng.normal(size=(6,))
        targets = (rng.random(6) > 0.5).astype(float)
        loss = Tensor(logits).bce_with_logits(targets)
        probs = 1 / (1 + np.exp(-logits))
        ref = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs))
        assert loss.item() == pytest.approx(ref.mean(), abs=1e-9)

    def test_grad(self):
        rng = make_rng(9)
        targets = (rng.random(5) > 0.5).astype(float)
        check_grad(lambda x: x.bce_with_logits(targets), (5,), seed=10)

    def test_weighted(self):
        logits = Tensor(np.zeros(2))
        targets = np.array([1.0, 0.0])
        weights = np.array([3.0, 1.0])
        loss = logits.bce_with_logits(targets, weights)
        assert loss.item() == pytest.approx(np.log(2), abs=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            Tensor(np.zeros(3)).bce_with_logits(np.zeros(4))

    def test_extreme_logits_stable(self):
        loss = Tensor(np.array([1000.0, -1000.0])).bce_with_logits(
            np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6


class TestAutogradMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ModelError):
            (x * 2).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x.sum() + x.sum()).backward()
        assert np.allclose(x.grad, 2.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y + y * y
        z.backward()
        # dz/dx = 3 + 2*9*... : z = 3x + 9x^2 -> dz/dx = 3 + 18x = 39
        assert x.grad[0] == pytest.approx(39.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_composite_gradcheck_property(self, seed):
        """Property: backward matches numeric gradients for a random
        composite expression."""
        check_grad(
            lambda x: ((x @ x.transpose()).sigmoid().sum()
                       + (x * x).mean()),
            (3, 2),
            seed=seed,
        )
