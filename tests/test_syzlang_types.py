"""Tests for the Syzlang type system."""

import pytest

from repro.errors import SpecError
from repro.syzlang.types import (
    ArgKind,
    ArrayType,
    BufferKind,
    BufferType,
    ConstType,
    FlagsType,
    IntType,
    LenType,
    PtrType,
    ResourceKind,
    ResourceType,
    StructType,
)


class TestIntType:
    def test_defaults(self):
        ty = IntType()
        assert ty.bits == 64
        assert ty.upper_bound == 2**64 - 1
        assert ty.is_mutable()

    def test_explicit_maximum(self):
        ty = IntType(bits=32, minimum=5, maximum=10)
        assert ty.upper_bound == 10

    def test_bad_width_rejected(self):
        with pytest.raises(SpecError):
            IntType(bits=12)

    def test_empty_range_rejected(self):
        with pytest.raises(SpecError):
            IntType(minimum=10, maximum=5)

    def test_bad_alignment_rejected(self):
        with pytest.raises(SpecError):
            IntType(align=0)


class TestFlagsType:
    def test_names_for(self):
        ty = FlagsType(flags=(("A", 1), ("B", 2), ("C", 4)))
        assert ty.names_for(3) == ["A", "B"]
        assert ty.names_for(0) == []

    def test_zero_valued_flag_not_in_names(self):
        ty = FlagsType(flags=(("NONE", 0), ("A", 1)))
        assert ty.names_for(1) == ["A"]

    def test_value_of(self):
        ty = FlagsType(flags=(("A", 1), ("B", 2)))
        assert ty.value_of("B") == 2
        with pytest.raises(SpecError):
            ty.value_of("Z")

    def test_all_bits(self):
        ty = FlagsType(flags=(("A", 1), ("B", 8)))
        assert ty.all_bits() == 9

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecError):
            FlagsType(flags=(("A", 1), ("A", 2)))

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            FlagsType(flags=())


class TestResourceKind:
    def test_self_compatible(self):
        fd = ResourceKind("fd")
        assert fd.compatible_with(fd)

    def test_child_compatible_with_parent(self):
        fd = ResourceKind("fd")
        sock = ResourceKind("sock", parent=fd)
        assert sock.compatible_with(fd)
        assert not fd.compatible_with(sock)

    def test_grandchild(self):
        a = ResourceKind("a")
        b = ResourceKind("b", parent=a)
        c = ResourceKind("c", parent=b)
        assert c.compatible_with(a)


class TestStructType:
    def test_field_lookup(self):
        ty = StructType("s", fields=(("x", IntType()), ("y", IntType())))
        assert ty.field_index("y") == 1
        assert isinstance(ty.field_type("x"), IntType)

    def test_missing_field(self):
        ty = StructType("s", fields=(("x", IntType()),))
        with pytest.raises(SpecError):
            ty.field_type("nope")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SpecError):
            StructType("s", fields=(("x", IntType()), ("x", IntType())))

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            StructType("s", fields=())


class TestKinds:
    def test_buffer_kinds(self):
        assert BufferType().kind is ArgKind.BUFFER
        assert BufferType(buffer_kind=BufferKind.STRING).kind is ArgKind.STRING
        assert (
            BufferType(buffer_kind=BufferKind.FILENAME).kind
            is ArgKind.FILENAME
        )

    def test_mutability(self):
        fd = ResourceKind("fd")
        assert not ConstType(5).is_mutable()
        assert not PtrType(IntType()).is_mutable()
        assert not StructType("s", fields=(("x", IntType()),)).is_mutable()
        assert not ArrayType(IntType()).is_mutable()
        assert LenType(path="buf").is_mutable()
        assert ResourceType(fd).is_mutable()
        assert BufferType().is_mutable()

    def test_bad_buffer_range(self):
        with pytest.raises(SpecError):
            BufferType(min_len=5, max_len=2)

    def test_bad_array_range(self):
        with pytest.raises(SpecError):
            ArrayType(IntType(), min_len=3, max_len=1)
