"""PR 10: release-diff impact analysis and patch-directed fuzzing.

Covers the static pipeline (CFG diff -> ImpactReport -> TargetManifest
-> DistanceField), the soundness contract (zero false "unreachable"
verdicts against executor-audited witnesses), the impact lints, the
analyze CLI exit-code contract (0 clean / 1 findings / 2 broken), and
a directed-fuzzing smoke run through ``fuzz --directed``.
"""

import json
import math

import pytest

from repro.analyze import (
    DependencyOracle,
    DistanceField,
    ImpactReport,
    PatchDirector,
    ReachabilityAnalysis,
    TargetManifest,
    build_target_manifest,
    compute_impact,
    findings_json,
    run_impact_checks,
    strict_failures,
    witness_program,
)
from repro.analyze.impact import classify_block
from repro.cli import main
from repro.kernel import Executor, build_kernel
from repro.syzlang.stdlib import RELEASE_DELTAS


@pytest.fixture(scope="module")
def tiny_68():
    return build_kernel("6.8", seed=1, size="tiny")


@pytest.fixture(scope="module")
def tiny_69():
    return build_kernel("6.9", seed=1, size="tiny")


@pytest.fixture(scope="module")
def report(tiny_68, tiny_69):
    return compute_impact(tiny_68, tiny_69)


@pytest.fixture(scope="module")
def reach_69(tiny_69):
    return ReachabilityAnalysis(tiny_69)


@pytest.fixture(scope="module")
def oracle_69(tiny_69):
    return DependencyOracle(tiny_69)


@pytest.fixture(scope="module")
def manifest(tiny_68, tiny_69, report, reach_69, oracle_69):
    return build_target_manifest(
        tiny_68, tiny_69, report=report, reach=reach_69, oracle=oracle_69
    )


class TestImpactDiff:
    def test_added_handlers_match_release_delta(self, report):
        expected = {
            spec.full_name
            for version, specs in RELEASE_DELTAS if version == "6.9"
            for spec in specs
        }
        assert set(report.added_handlers) == expected

    def test_self_diff_is_empty(self, tiny_68):
        again = build_kernel("6.8", seed=1, size="tiny")
        report = compute_impact(tiny_68, again)
        assert report.changed_blocks() == ()
        assert report.removed_blocks() == ()
        assert report.changed_predicates == ()
        assert report.added_handlers == ()
        assert report.removed_handlers == ()

    def test_diff_is_deterministic(self, tiny_68, tiny_69, report):
        assert compute_impact(tiny_68, tiny_69).to_json() == report.to_json()

    def test_changed_blocks_belong_to_new_kernel(self, tiny_69, report):
        changed = report.changed_blocks()
        assert changed
        assert all(block in tiny_69.blocks for block in changed)
        kinds = {report.kind_of(block) for block in changed}
        assert kinds <= {"added", "modified"}

    def test_touched_bugs_are_real(self, tiny_69, report):
        known = {bug.bug_id for bug in tiny_69.bugs}
        assert set(report.touched_bugs) <= known

    def test_report_json_round_trip(self, report):
        text = report.to_json()
        again = ImpactReport.from_json(text)
        assert again == report
        assert again.to_json() == text

    def test_report_json_rejects_wrong_version(self, report):
        payload = json.loads(report.to_json())
        payload["version"] = 999
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            ImpactReport.from_json(json.dumps(payload))


class TestManifest:
    def test_every_changed_block_is_classified(self, report, manifest):
        assert {t.block_id for t in manifest.targets} == set(
            report.changed_blocks()
        )
        assert all(
            t.classification in ("solvable", "unsteerable", "unreachable")
            for t in manifest.targets
        )

    def test_no_false_unreachable_verdicts(
        self, tiny_69, manifest, reach_69, oracle_69
    ):
        """The acceptance contract: a block is classified unreachable
        iff no witness program exists, and every solvable target's
        witness actually executes through it."""
        executor = Executor(tiny_69, seed=7)
        for target in manifest.targets:
            witness = witness_program(
                tiny_69, target.block_id, reach=reach_69, oracle=oracle_69
            )
            if target.classification == "unreachable":
                assert witness is None, (
                    f"block {target.block_id} marked unreachable but has "
                    f"a witness"
                )
            else:
                assert witness is not None, (
                    f"block {target.block_id} marked {target.classification} "
                    f"but no witness exists"
                )
                result = executor.run(witness)
                assert target.block_id in result.coverage.blocks

    def test_classify_block_reasons(self, manifest):
        for target in manifest.targets:
            assert target.reason

    def test_classify_matches_manifest(
        self, manifest, reach_69, oracle_69
    ):
        for target in manifest.targets[:20]:
            classification, _reason = classify_block(
                target.block_id, reach_69, oracle_69
            )
            assert classification == target.classification

    def test_manifest_json_round_trip(self, manifest):
        text = manifest.to_json()
        again = TargetManifest.from_json(text)
        assert again == manifest
        assert again.to_json() == text

    def test_fuzzable_excludes_unreachable(self, manifest):
        unreachable = {
            t.block_id for t in manifest.targets
            if t.classification == "unreachable"
        }
        fuzzable = set(manifest.fuzzable_blocks())
        assert not (fuzzable & unreachable)
        assert fuzzable | unreachable == {
            t.block_id for t in manifest.targets
        }


class TestDistanceField:
    def test_targets_have_distance_zero(self, tiny_69, manifest):
        field = DistanceField(tiny_69, manifest.fuzzable_blocks())
        for target in field.targets:
            assert field.block_distance(target) == 0.0

    def test_distance_is_monotone_along_cfg_edges(self, tiny_69, manifest):
        """d(u) <= min over successors + 1: one CFG step shrinks the
        distance by at most one."""
        field = DistanceField(tiny_69, manifest.fuzzable_blocks())
        for block_id, succs in tiny_69.succs.items():
            d = field.block_distance(block_id)
            best_succ = min(
                (field.block_distance(s) for s in succs),
                default=math.inf,
            )
            assert d <= best_succ + 1.0

    def test_producer_edges_extend_the_gradient(self, tiny_69, manifest):
        field = DistanceField(tiny_69, manifest.fuzzable_blocks())
        plain = DistanceField(
            tiny_69, manifest.fuzzable_blocks(),
            state_edge_cost=math.inf,
        )
        finite = {b for b, d in field.distance.items() if d < math.inf}
        finite_plain = {
            b for b, d in plain.distance.items() if d < math.inf
        }
        assert finite_plain <= finite

    def test_program_distance_minimises(self, tiny_69, manifest):
        field = DistanceField(tiny_69, manifest.fuzzable_blocks())
        target = field.targets[0]
        assert field.program_distance({target}) == 0.0
        assert field.program_distance(set()) == math.inf

    def test_steering_spine_is_dominating_conditions(self, tiny_69, manifest):
        field = DistanceField(tiny_69, manifest.fuzzable_blocks())
        from repro.kernel.blocks import BlockRole

        for target in field.targets[:10]:
            spine = field.steering_spine(target)
            for block in spine:
                assert tiny_69.blocks[block].role is BlockRole.CONDITION


class TestImpactLint:
    def test_stock_diff_passes_strict(
        self, tiny_68, tiny_69, report, manifest
    ):
        findings = run_impact_checks(report, manifest, tiny_68, tiny_69)
        assert not strict_failures(findings)
        names = {f.check for f in findings}
        assert "changed-block-unreachable" in names

    def test_drift_fires_as_error(self, tiny_68, tiny_69, manifest, report):
        from dataclasses import replace

        # Forge a report that claims one added handler too few: the
        # delta-spec-drift cross-check must catch the disagreement
        # between the diff and the syscall tables.
        forged = replace(
            report, added_handlers=report.added_handlers[:-1]
        )
        findings = run_impact_checks(forged, manifest, tiny_68, tiny_69)
        errors = strict_failures(findings)
        assert errors
        assert any(f.check == "delta-spec-drift" for f in errors)

    def test_findings_bytes_stable_under_duplication(
        self, tiny_68, tiny_69, report, manifest
    ):
        """Satellite 1: findings.json is byte-identical regardless of
        how many times (or in what order) checks contributed."""
        findings = run_impact_checks(report, manifest, tiny_68, tiny_69)
        context = {"scope": "impact", "releases": ["6.8", "6.9"]}
        baseline = findings_json(findings, **context)
        shuffled = list(reversed(findings)) + findings
        assert findings_json(shuffled, **context) == baseline


class TestAnalyzeCLI:
    """Satellite 2: the pinned exit-code contract (0/1/2)."""

    def test_impact_clean_exit_zero(self, tmp_path, capsys):
        manifest_path = tmp_path / "targets.json"
        out_path = tmp_path / "findings.json"
        code = main([
            "analyze", "impact", "6.8", "6.9", "--size", "tiny",
            "--strict", "--manifest", str(manifest_path),
            "--out", str(out_path),
        ])
        assert code == 0
        payload = json.loads(manifest_path.read_text())
        assert payload["from_version"] == "6.8"
        assert payload["to_version"] == "6.9"
        assert payload["targets"]
        assert out_path.exists()
        assert "impact 6.8 -> 6.9" in capsys.readouterr().out

    def test_internal_error_exit_two(self, capsys):
        code = main(["analyze", "impact", "6.8", "nope", "--size", "tiny"])
        assert code == 2
        assert "internal error" in capsys.readouterr().err

    def test_kernel_internal_error_exit_two(self, capsys):
        code = main([
            "analyze", "kernel", "--releases", "not-a-release",
            "--size", "tiny",
        ])
        assert code == 2
        assert "internal error" in capsys.readouterr().err

    def test_strict_findings_exit_one(self, monkeypatch, capsys):
        # Forge an error-severity finding so --strict trips without
        # needing a broken kernel: the contract is exit 1, not 2.
        from repro.analyze.lint import Finding

        def forged(kernel, reach=None, oracle=None, observer=None,
                   namespace=""):
            return [Finding(
                scope="kernel", check="forged-error", severity="error",
                location="x", message="forged",
            )]

        monkeypatch.setattr("repro.analyze.run_kernel_checks", forged)
        code = main([
            "analyze", "kernel", "--kernel", "6.8", "--size", "tiny",
            "--strict",
        ])
        assert code == 1
        assert "--strict" in capsys.readouterr().err


class TestPatchDirector:
    def test_observe_only_records_without_steering(
        self, tiny_69, manifest
    ):
        director = PatchDirector(tiny_69, manifest, observe_only=True)
        assert not director.complete
        targets = director.targets
        director.note_coverage(set(targets), 123.0)
        assert director.complete
        assert director.time_to_all(1000.0) == 123.0
        assert set(director.reached_at) == set(targets)

    def test_time_to_all_is_horizon_when_incomplete(self, tiny_69, manifest):
        director = PatchDirector(tiny_69, manifest, observe_only=True)
        director.note_coverage({director.targets[0]}, 10.0)
        assert director.time_to_all(500.0) == 500.0

    def test_rank_targets_prefers_near(self, tiny_69, manifest):
        director = PatchDirector(tiny_69, manifest)
        pool = list(director.targets)
        ranked = director.rank_targets(pool, 5)
        field = director._field
        distances = [field.block_distance(b) for b in ranked]
        assert distances == sorted(distances)


class TestDirectedFuzzCLI:
    def test_directed_smoke_reaches_targets(self, capsys):
        code = main([
            "fuzz", "--directed", "patch:6.8..6.9", "--oracle",
            "--size", "tiny", "--hours", "0.2", "--seed-corpus", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "patch 6.8 -> 6.9" in out
        assert "directed:" in out

    def test_malformed_spec_exit_two(self, capsys):
        assert main([
            "fuzz", "--directed", "patch:6.8", "--oracle", "--size", "tiny",
        ]) == 2
        assert "bad --directed" in capsys.readouterr().err

    def test_conflicting_flags_exit_two(self, capsys):
        assert main([
            "fuzz", "--directed", "patch:6.8..6.9", "--baseline",
            "--size", "tiny",
        ]) == 2
        assert main([
            "fuzz", "--directed", "patch:6.8..6.9", "--oracle",
            "--workers", "2", "--size", "tiny",
        ]) == 2


class TestPatchCampaign:
    def test_directed_beats_plain(self, tiny_68, tiny_69, manifest):
        from repro.snowplow import run_patch_campaign
        from repro.snowplow.campaign import fuzz_campaign_config

        config = fuzz_campaign_config(1.0, 0, 50)
        result = run_patch_campaign(
            tiny_68, tiny_69, config, manifest=manifest
        )
        assert result.targets == tuple(manifest.fuzzable_blocks())
        # Directed must reach strictly more of the changed surface
        # strictly earlier than the undirected arm at this horizon.
        assert result.directed_time <= result.plain_time
        assert len(result.directed_reached_at) >= len(
            result.plain_reached_at
        )
        assert result.targets_reached_fraction() > 0.95
