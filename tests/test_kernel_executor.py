"""Tests for the kernel executor: determinism, coverage, crashes, state."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ExecutionError
from repro.kernel import BlockRole, Executor, build_kernel
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator
from repro.syzlang.program import Call, IntValue, Program, zero_value
from repro.syzlang.stdlib import ATA_16, ATA_NOP, ATA_PROT_PIO


class TestDeterminism:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_noise_free_execution_is_deterministic(
        self, kernel, generator, seed
    ):
        """Property (§3.1): from the VM snapshot, coverage is a pure
        function of the program."""
        program = ProgramGenerator(kernel.table, make_rng(seed)).random_program()
        executor = Executor(kernel)
        a = executor.run(program)
        b = executor.run(program)
        assert a.coverage.blocks == b.coverage.blocks
        assert a.coverage.edges == b.coverage.edges
        assert a.retvals == b.retvals

    def test_noisy_execution_varies(self, kernel, generator):
        program = generator.random_program(length=6)
        noisy = Executor(kernel, noise=1.0, seed=1)
        a = noisy.run(program)
        b = noisy.run(program)
        irq = set(kernel.interrupt_trace)
        assert (a.coverage.blocks | b.coverage.blocks) & irq

    def test_bad_noise_rejected(self, kernel):
        with pytest.raises(ExecutionError):
            Executor(kernel, noise=1.5)


class TestExecutionSemantics:
    def test_traces_follow_static_cfg(self, kernel, generator, executor):
        program = generator.random_program()
        result = executor.run(program)
        for trace in result.coverage.call_traces:
            for src, dst in zip(trace, trace[1:]):
                assert dst in kernel.succs.get(src, ()), (
                    f"executed edge {src}->{dst} not in static CFG"
                )

    def test_each_call_starts_at_entry(self, kernel, generator, executor):
        program = generator.random_program()
        result = executor.run(program)
        for index, trace in enumerate(result.coverage.call_traces):
            spec_name = program.calls[index].spec.full_name
            assert trace[0] == kernel.handlers[spec_name].entry

    def test_successful_producer_returns_handle(self, kernel, executor):
        spec = kernel.table.lookup("socket")
        program = Program(
            [Call(spec, [zero_value(ty) for _, ty in spec.args])]
        )
        result = executor.run(program)
        trace = result.coverage.call_traces[0]
        last_block = kernel.blocks[trace[-1]]
        if last_block.role is BlockRole.EXIT_SUCCESS:
            assert result.retvals[0] >= 3
        else:
            assert result.retvals[0] <= 0

    def test_null_resource_takes_error_path(self, kernel, executor):
        spec = kernel.table.lookup("close")
        program = Program(
            [Call(spec, [zero_value(ty) for _, ty in spec.args])]
        )
        result = executor.run(program)
        # NULL fd must fail the resource guard: EXIT_ERROR with errno.
        assert result.retvals[0] < 0

    def test_state_flags_propagate(self, kernel, executor, generator):
        """Executing a call sets its subsystem flag, visible to
        StateConditions of later calls."""
        program = generator.random_program()
        result = executor.run(program)
        assert result.blocks_executed == sum(
            len(t) for t in result.coverage.call_traces
        )

    def test_unknown_handler_rejected(self, kernel, executor):
        other = build_kernel("6.10", seed=1, size="small")
        spec = other.table.lookup("socket$rxrpc")
        program = Program(
            [Call(spec, [zero_value(ty) for _, ty in spec.args])]
        )
        with pytest.raises(ExecutionError):
            executor.run(program)


class TestAtaBug:
    def _ata_program(self, kernel):
        """The Table 4 bug #1 reproducer: open /dev/sg0 then send an
        ATA_16 PIO NOP with an oversized outlen."""
        table = kernel.table
        open_spec = table.lookup("open$scsi")
        ioctl_spec = table.lookup("ioctl$SCSI_IOCTL_SEND_COMMAND")
        open_call = Call(
            open_spec, [zero_value(ty) for _, ty in open_spec.args]
        )
        ioctl_call = Call(
            ioctl_spec, [zero_value(ty) for _, ty in ioctl_spec.args]
        )
        program = Program([open_call, ioctl_call])
        ioctl_call.args[0].producer = 0
        arg = ioctl_call.args[2].pointee  # scsi_ioctl_command struct
        outlen, cdb = arg.fields[1], arg.fields[2]
        cdb.fields[0].value = ATA_16       # opcode
        cdb.fields[1].value = ATA_PROT_PIO  # protocol
        cdb.fields[3].value = ATA_NOP      # ata command
        outlen.value = 4096                # > 512: insufficient check
        return program

    def test_ata_bug_triggers(self, kernel, executor):
        program = self._ata_program(kernel)
        result = executor.run(program)
        assert result.crashed
        assert result.crash.bug.bug_id == "ata-oob"

    def test_ata_bug_needs_all_conditions(self, kernel, executor):
        program = self._ata_program(kernel)
        # Break one condition at a time; the bug must not fire.
        breakers = [
            lambda p: setattr(
                p.calls[1].args[2].pointee.fields[2].fields[0], "value", 0x12
            ),
            lambda p: setattr(
                p.calls[1].args[2].pointee.fields[2].fields[1], "value", 0x06
            ),
            lambda p: setattr(
                p.calls[1].args[2].pointee.fields[2].fields[3], "value", 0xEC
            ),
            lambda p: setattr(
                p.calls[1].args[2].pointee.fields[1], "value", 100
            ),
        ]
        for breaker in breakers:
            broken = program.clone()
            breaker(broken)
            result = executor.run(broken)
            assert not (
                result.crashed and result.crash.bug.bug_id == "ata-oob"
            )

    def test_ata_bug_needs_valid_fd(self, kernel, executor):
        program = self._ata_program(kernel)
        program.calls[1].args[0].producer = None
        result = executor.run(program)
        assert not result.crashed

    def test_corruption_manifests_with_varied_signatures(self, kernel):
        executor = Executor(kernel, seed=3)
        program = self._ata_program(kernel)
        signatures = {executor.run(program).crash.description
                      for _ in range(40)}
        assert len(signatures) > 3  # memory corruption, §5.3.2


class TestCoverage:
    def test_edge_extraction(self):
        from repro.kernel.coverage import Coverage

        coverage = Coverage.from_traces([[1, 2, 3], [2, 3]])
        assert coverage.blocks == {1, 2, 3}
        assert coverage.edges == {(1, 2), (2, 3)}

    def test_merge_and_diff(self):
        from repro.kernel.coverage import Coverage

        a = Coverage.from_traces([[1, 2]])
        b = Coverage.from_traces([[2, 3]])
        assert b.new_blocks(a) == {3}
        assert b.new_edges(a) == {(2, 3)}
        a.merge(b)
        assert a.blocks == {1, 2, 3}

    def test_copy_is_independent(self):
        from repro.kernel.coverage import Coverage

        a = Coverage.from_traces([[1, 2]])
        b = a.copy()
        b.blocks.add(99)
        assert 99 not in a.blocks
