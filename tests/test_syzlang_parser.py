"""Parser/serializer tests, including hypothesis round-trip properties."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ParseError
from repro.rng import make_rng
from repro.syzlang import (
    ProgramGenerator,
    build_standard_table,
    parse_program,
    serialize_program,
)


@pytest.fixture(scope="module")
def table():
    return build_standard_table("6.10")


class TestSerialize:
    def test_resource_labels(self, table):
        gen = ProgramGenerator(table, make_rng(0))
        spec = table.lookup("open")
        program_text = serialize_program(
            __import__("repro.syzlang.program", fromlist=["Program"]).Program(
                [gen.random_call(spec, {})]
            )
        )
        assert program_text.startswith("r0 = open(")

    def test_flags_render_as_names(self, table):
        from repro.syzlang.program import Call, IntValue, Program, zero_value

        spec = table.lookup("pipe2")
        call = Call(spec, [zero_value(ty) for _, ty in spec.args])
        flags = call.args[0]
        assert isinstance(flags, IntValue)
        flags.value = 0x800 | 0x80000
        text = serialize_program(Program([call]))
        assert "O_NONBLOCK|O_CLOEXEC" in text

    def test_unnamed_flag_bits_render_hex(self, table):
        from repro.syzlang.program import Call, Program, zero_value

        spec = table.lookup("pipe2")
        call = Call(spec, [zero_value(ty) for _, ty in spec.args])
        call.args[0].value = 0x12345  # includes unnamed bits
        text = serialize_program(Program([call]))
        assert "0x12345" in text


class TestParse:
    def test_simple_program(self, table):
        text = "r0 = open(&(0x7f0000000000)='./file0', O_CREAT|O_RDWR, 0x1ff)\nclose(r0)"
        program = parse_program(text, table)
        assert len(program) == 2
        assert program.calls[1].args[0].producer == 0

    def test_comments_and_blanks_skipped(self, table):
        text = "# a comment\n\nmkdir(&(0x7f0000000000)='./dir0', 0x1c0)\n"
        program = parse_program(text, table)
        assert len(program) == 1

    def test_null_resource(self, table):
        text = "close(0xffffffffffffffff)"
        program = parse_program(text, table)
        assert program.calls[0].args[0].producer is None

    def test_unknown_syscall(self, table):
        with pytest.raises(ParseError):
            parse_program("frobnicate(0x0)", table)

    def test_undefined_label(self, table):
        with pytest.raises(ParseError):
            parse_program("close(r7)", table)

    def test_wrong_const(self, table):
        # openat's dirfd is pinned to AT_FDCWD (0xffffff9c).
        with pytest.raises(ParseError):
            parse_program(
                "openat(0x5, &(0x7f0000000000)='./file0', 0x0, 0x0)", table
            )

    def test_trailing_garbage(self, table):
        with pytest.raises(ParseError):
            parse_program("close(0xffffffffffffffff) junk", table)

    def test_error_carries_line_number(self, table):
        text = "mkdir(&(0x7f0000000000)='./dir0', 0x1c0)\nnope(0x0)"
        with pytest.raises(ParseError) as excinfo:
            parse_program(text, table)
        assert excinfo.value.line == 2

    def test_label_on_non_producing_call(self, table):
        with pytest.raises(ParseError):
            parse_program("r0 = close(0xffffffffffffffff)", table)


class TestRoundTrip:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_serialize_parse_roundtrip(self, table, seed):
        """Property: serialize → parse → serialize is a fixpoint and the
        reparsed program validates."""
        generator = ProgramGenerator(table, make_rng(seed))
        program = generator.random_program()
        text = serialize_program(program)
        reparsed = parse_program(text, table)
        reparsed.validate(table)
        assert serialize_program(reparsed) == text

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_roundtrip_preserves_structure(self, table, seed):
        generator = ProgramGenerator(table, make_rng(seed))
        program = generator.random_program()
        reparsed = parse_program(serialize_program(program), table)
        assert len(reparsed) == len(program)
        for original, parsed in zip(program.calls, reparsed.calls):
            assert original.spec.full_name == parsed.spec.full_name
        assert (
            [p.elements for p in reparsed.mutation_sites()]
            == [p.elements for p in program.mutation_sites()]
        )
