"""Corpus lineage, coverage attribution, and `observe explain`.

Covers the provenance acceptance gates: content-addressed identity,
ledger semantics (first-wins, merge-order invariance), complete
reproduction chains for every bug, >=95% edge attribution on tiny/6.8,
byte-identical lineage exports across same-seed runs / kill+resume /
worker counts, and hub subsumption accounting.
"""

import json
import os

import pytest

from repro.cluster import ClusterConfig, CorpusHub
from repro.fuzzer import CorpusEntry
from repro.kernel import Coverage, build_kernel
from repro.observe import (
    Observer,
    attribution_table,
    coverage_waterfall,
    format_chain,
    lineage_dot,
    lineage_json,
    load_lineage,
    resolve_target,
)
from repro.observe.provenance import (
    SEED_ENGINE,
    UNION,
    LineageRecord,
    ProvenanceLog,
    entry_id_for,
)
from repro.rng import make_rng
from repro.snowplow import CampaignConfig, build_cluster
from repro.snowplow.campaign import (
    build_fuzz_loop,
    fuzz_campaign_config,
    fuzz_run_seed,
)
from repro.snowplow.checkpointing import loop_state, restore_loop_state
from repro.syzlang import ProgramGenerator

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture(scope="module")
def kernel_tiny():
    return build_kernel("6.8", seed=1, size="tiny")


def _build_loop(kernel, observer=None):
    """Exactly the `repro fuzz --baseline --size tiny --hours 0.5` loop."""
    config = fuzz_campaign_config(0.5, 0, 100)
    return build_fuzz_loop(
        kernel, None, fuzz_run_seed(0, kernel.version), config,
        baseline=True, observer=observer if observer is not None else Observer(),
    )


@pytest.fixture(scope="module")
def full_run(kernel_tiny):
    """One finished tiny/6.8 campaign shared by the acceptance tests."""
    loop = _build_loop(kernel_tiny)
    loop.run()
    stats = loop.finalize()
    return loop, stats


def _record(entry_id, parent=None, engine="syzkaller", slot="heuristic",
            operator="splice", time=100.0, worker=0, gain=0,
            burst_id=None, predicted=0):
    return LineageRecord(
        entry_id=entry_id, parent_id=parent, engine=engine,
        operator=operator, slot=slot, burst_id=burst_id,
        predicted=predicted, gain=gain, time=time, worker=worker,
    )


# ----- identity -----


class TestEntryIdentity:
    def test_content_addressed_and_clone_stable(self, kernel_tiny):
        program = ProgramGenerator(
            kernel_tiny.table, make_rng(5)
        ).seed_corpus(1)[0]
        coverage = Coverage.from_traces([[1, 2, 3]])
        first = entry_id_for(program, coverage)
        assert first == entry_id_for(program.clone(), coverage.copy())
        assert len(first) == 16  # blake2b digest_size=8, hex

    def test_coverage_is_part_of_identity(self, kernel_tiny):
        program = ProgramGenerator(
            kernel_tiny.table, make_rng(5)
        ).seed_corpus(1)[0]
        assert entry_id_for(program, Coverage.from_traces([[1, 2]])) != (
            entry_id_for(program, Coverage.from_traces([[1, 2, 3]]))
        )


# ----- the ledger -----


class TestProvenanceLog:
    def test_record_is_first_wins_but_adopts_supersession(self):
        log = ProvenanceLog()
        original = log.record(_record("aa", time=10.0))
        late = _record("aa", time=99.0)
        late.superseded_by = "bb"
        stored = log.record(late)
        assert stored is original
        assert stored.time == 10.0
        assert stored.superseded_by == "bb"  # the one field a re-offer adds

    def test_chain_is_root_first_and_cycle_guarded(self):
        log = ProvenanceLog()
        log.record(_record("root", engine=SEED_ENGINE, slot="-"))
        log.record(_record("mid", parent="root"))
        log.record(_record("leaf", parent="mid"))
        chain = log.chain("leaf")
        assert [rec.entry_id for rec in chain] == ["root", "mid", "leaf"]
        # A (corrupt) parent cycle must terminate, not hang.
        log.records["root"].parent_id = "leaf"
        assert [rec.entry_id for rec in log.chain("leaf")] == [
            "leaf", "mid", "root",
        ][::-1]

    def test_merge_is_invariant_to_log_order(self):
        a, b = ProvenanceLog(), ProvenanceLog()
        a.admit(_record("x", time=50.0, worker=0, gain=2), [(1, 2), (2, 3)])
        b.admit(_record("y", time=40.0, worker=1, gain=1), [(2, 3), (3, 4)])
        a.note_mutation("syzkaller", "heuristic")
        b.note_mutation("snowplow", "pmm")
        forward = ProvenanceLog.merge([a, b])
        backward = ProvenanceLog.merge([b, a])
        assert forward.state_dict() == backward.state_dict()
        # The contested edge goes to the earlier claim, not the first log.
        assert forward.edge_owner["2-3"] == "y"

    def test_state_roundtrips_through_json(self):
        log = ProvenanceLog()
        log.admit(_record("x", gain=1), [(1, 2)])
        log.note_crash("KASAN: demo", "x")
        log.supersede("x", UNION)
        other = ProvenanceLog()
        other.restore(json.loads(json.dumps(log.state_dict())))
        assert other == log
        assert lineage_json(other) == lineage_json(log)

    def test_load_lineage_rebuilds_the_export(self):
        log = ProvenanceLog()
        log.admit(_record("x", gain=1), [(7, 8)])
        assert load_lineage(lineage_json(log)) == log


# ----- golden DAG exports -----


def _demo_lineage() -> ProvenanceLog:
    """The fixed fixture the golden lineage files are generated from."""
    log = ProvenanceLog()
    log.admit(
        _record("seed0000aaaa0000", engine=SEED_ENGINE, operator="seed",
                slot="-", time=0.0, gain=3),
        [(1, 2), (2, 3), (3, 4)],
    )
    log.note_mutation("snowplow", "pmm")
    log.admit(
        _record("child000bbbb0000", parent="seed0000aaaa0000",
                engine="snowplow", slot="pmm",
                operator="argument_mutation", time=120.0, gain=2,
                burst_id="w0b1", predicted=2),
        [(4, 5), (5, 6)],
    )
    log.note_mutation("syzkaller", "heuristic")
    log.record(
        _record("rival000cccc0000", parent="seed0000aaaa0000",
                operator="splice", time=90.0, worker=1)
    )
    log.supersede("rival000cccc0000", "child000bbbb0000")
    log.note_crash("KASAN: use-after-free in demo", "child000bbbb0000")
    return log


class TestGoldenLineage:
    def test_lineage_json_matches_golden(self):
        with open(os.path.join(GOLDEN_DIR, "lineage.json")) as handle:
            assert lineage_json(_demo_lineage()) == handle.read().strip()

    def test_lineage_dot_matches_golden(self):
        with open(os.path.join(GOLDEN_DIR, "lineage.dot")) as handle:
            assert lineage_dot(_demo_lineage()) == handle.read()

    def test_demo_attribution_shape(self):
        rows = attribution_table(_demo_lineage())
        by_key = {f"{row['engine']}/{row['slot']}": row for row in rows}
        assert by_key["seed/-"]["edges"] == 3
        assert by_key["snowplow/pmm"]["bugs"] == 1
        assert by_key["snowplow/pmm"]["dead_share"] == 0.0
        assert by_key["syzkaller/heuristic"]["dead_share"] == 1.0
        waterfall = coverage_waterfall(_demo_lineage())
        assert waterfall[0]["root"] == "seed0000aaaa0000"
        assert waterfall[0]["edges"] == 5
        assert waterfall[0]["bugs"] == 1


# ----- acceptance on tiny/6.8 -----


class TestCampaignAttribution:
    def test_every_bug_resolves_to_a_complete_chain(self, full_run):
        loop, stats = full_run
        assert stats.crashes, "campaign found no bugs — gate untested"
        for crash in stats.crashes:
            kind, resolved, chain = resolve_target(
                loop.provenance, f"bug:{crash.signature}"
            )
            assert kind == "bug" and resolved == crash.signature
            assert chain, f"empty chain for {crash.signature}"
            assert chain[0].engine == SEED_ENGINE
            assert chain[0].parent_id is None
            for parent, child in zip(chain, chain[1:]):
                assert child.parent_id == parent.entry_id

    def test_at_least_95_percent_of_edges_attributed(self, full_run):
        loop, stats = full_run
        attributed = len(loop.provenance.edge_owner)
        assert attributed >= 0.95 * stats.final_edges

    def test_attributed_edges_resolve_to_live_records(self, full_run):
        loop, _ = full_run
        log = loop.provenance
        for owner in set(log.edge_owner.values()):
            assert log.chain(owner), f"edge owner {owner} has no chain"

    def test_exports_are_byte_stable_across_same_seed_runs(
        self, kernel_tiny, full_run
    ):
        first, _ = full_run
        second = _build_loop(kernel_tiny)
        second.run()
        second.finalize()
        assert lineage_json(second.provenance) == (
            lineage_json(first.provenance)
        )
        assert lineage_dot(second.provenance) == (
            lineage_dot(first.provenance)
        )

    def test_phase_gauges_are_canonical_but_profiler_is_not(
        self, full_run, tmp_path
    ):
        loop, _ = full_run
        loop.observer.export(tmp_path)
        metrics = (tmp_path / Observer.METRICS_FILE).read_text()
        assert "fuzz.execs_per_vsecond" in metrics
        assert "time.share.execution" in metrics
        assert "time.share.mutation" in metrics
        # The sampling profiler is diagnostic-only: it is not part of
        # the checkpoint, so a resumed run restarts it empty — keeping
        # it out of metrics.json is what keeps that file byte-identical
        # across kill+resume.
        assert '"profile.' not in metrics
        assert (tmp_path / Observer.LINEAGE_FILE).exists()


class TestKillResume:
    def test_explain_output_survives_kill_and_resume(
        self, kernel_tiny, full_run
    ):
        whole, stats = full_run
        horizon = whole.clock.horizon

        interrupted = _build_loop(kernel_tiny)
        interrupted.run_until(0.8 * horizon)
        state = json.loads(json.dumps(loop_state(interrupted)))

        resumed = _build_loop(kernel_tiny)
        restore_loop_state(resumed, state)
        resumed.run()
        resumed.finalize()

        assert lineage_json(resumed.provenance) == (
            lineage_json(whole.provenance)
        )
        table = json.dumps(attribution_table(resumed.provenance))
        assert table == json.dumps(attribution_table(whole.provenance))
        for crash in stats.crashes:
            assert format_chain(
                *resolve_target(
                    resumed.provenance, f"bug:{crash.signature}"
                )
            ) == format_chain(
                *resolve_target(whole.provenance, f"bug:{crash.signature}")
            )


class TestWorkerCountInvariance:
    def test_worker_zero_attribution_identical_at_1_4_8_workers(
        self, kernel_tiny
    ):
        """Worker i's RNG streams derive from (run_seed, "worker", i)
        regardless of fleet size; with hub syncs pushed past the
        horizon, worker 0 must earn the exact same attribution table
        whether it fuzzes alone or inside an 8-worker fleet."""
        config = CampaignConfig(
            horizon=900.0, runs=1, seed=5, seed_corpus_size=10,
            sample_interval=300.0,
        )
        tables = []
        for workers in (1, 4, 8):
            cluster = build_cluster(
                kernel_tiny, None, 21, config,
                cluster_config=ClusterConfig(
                    workers=workers, sync_interval=10 * config.horizon,
                ),
                baseline=True,
            )
            cluster.run()
            tables.append(json.dumps(
                attribution_table(cluster.workers[0].loop.provenance),
                sort_keys=True,
            ))
        assert tables[0] == tables[1] == tables[2]


# ----- hub subsumption accounting -----


class TestHubSubsumption:
    def _entry(self, program, traces, lineage):
        return CorpusEntry(
            program=program, coverage=Coverage.from_traces(traces),
            signal=1, lineage=lineage,
        )

    def test_dedup_drop_books_subsumption_with_owner(self, kernel_tiny):
        programs = ProgramGenerator(
            kernel_tiny.table, make_rng(7)
        ).seed_corpus(3)
        hub = CorpusHub()
        winner = self._entry(programs[0], [[1, 2, 3]], _record("winner"))
        rival = self._entry(programs[1], [[1, 2, 3]], _record("rival"))
        assert hub.push(0, [winner], now=10.0) == 1
        assert hub.push(1, [rival], now=20.0) == 0
        assert hub.stats.accepted == 1
        assert hub.stats.duplicates == 1
        assert hub.stats.subsumed_entries == 1
        assert hub.provenance.records["rival"].superseded_by == "winner"
        assert hub.provenance.records["winner"].superseded_by is None

    def test_reoffer_of_own_entry_is_not_a_subsumption(self, kernel_tiny):
        programs = ProgramGenerator(
            kernel_tiny.table, make_rng(7)
        ).seed_corpus(1)
        hub = CorpusHub()
        entry = self._entry(programs[0], [[1, 2, 3]], _record("mine"))
        hub.push(0, [entry], now=10.0)
        hub.push(0, [entry], now=30.0)  # replication echo / pull push-back
        assert hub.stats.duplicates == 1
        assert hub.stats.subsumed_entries == 0
        assert hub.provenance.records["mine"].superseded_by is None

    def test_union_subsumption_when_no_single_owner(self, kernel_tiny):
        programs = ProgramGenerator(
            kernel_tiny.table, make_rng(7)
        ).seed_corpus(2)
        hub = CorpusHub()
        hub.push(0, [
            self._entry(programs[0], [[1, 2, 3]], _record("broad")),
        ], now=10.0)
        # New signature, but every edge is already in the hub union.
        stale = self._entry(programs[1], [[1, 2]], _record("stale"))
        assert hub.push(1, [stale], now=20.0) == 0
        assert hub.stats.subsumed_entries == 1
        assert hub.provenance.records["stale"].superseded_by == UNION

    def test_zero_loss_accounting_closes(self, kernel_tiny):
        programs = ProgramGenerator(
            kernel_tiny.table, make_rng(7)
        ).seed_corpus(3)
        hub = CorpusHub()
        hub.push(0, [
            self._entry(programs[0], [[1, 2, 3]], _record("a1")),
            self._entry(programs[1], [[4, 5, 6]], _record("a2")),
        ], now=10.0)
        hub.push(1, [
            self._entry(programs[2], [[1, 2, 3]], _record("a3")),
        ], now=20.0)
        assert hub.stats.pushes == hub.stats.accepted + hub.stats.duplicates
        assert hub.provenance.superseded_count == hub.stats.subsumed_entries

    def test_lineage_survives_hub_checkpoint(self, kernel_tiny):
        programs = ProgramGenerator(
            kernel_tiny.table, make_rng(7)
        ).seed_corpus(2)
        hub = CorpusHub()
        hub.push(0, [
            self._entry(programs[0], [[1, 2, 3]], _record("kept")),
        ], now=10.0)
        hub.push(1, [
            self._entry(programs[1], [[1, 2, 3]], _record("gone")),
        ], now=20.0)
        restored = CorpusHub()
        restored.restore(
            json.loads(json.dumps(hub.state_dict())), kernel_tiny.table
        )
        assert lineage_json(restored.provenance) == (
            lineage_json(hub.provenance)
        )
        assert restored.entries[0].lineage is (
            restored.provenance.records["kept"]
        )
        # A fresh collision against the restored hub still names the
        # right owner: the signature->owner map rebuilt too.
        again = self._entry(programs[1], [[1, 2, 3]], _record("late"))
        restored.push(2, [again], now=30.0)
        assert restored.provenance.records["late"].superseded_by == "kept"
